"""Figure 7 — AG, RS, and A2A dispatch time vs top-k (Mixtral-8×7B).

Paper setup: token-dispatch collectives on an 8-GPU NVLink node for
Mixtral-8×7B shapes, varying top-k.  Paper result: all-gather/reduce-
scatter is ring-based and independent of k; all-to-all grows with k and
is less bandwidth-efficient, so "when top-k > 6, the all-gather-based EP
implementation is more efficient".
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO
from repro.core.planner import dispatch_crossover_top_k, \
    dispatch_mode_times
from repro.perf.estimator import KernelModel

MODEL = MODEL_ZOO["mixtral-8x7b"]
N = 8


def run_fig7():
    link = KernelModel(GPU_SPECS["h800"]).intra_link()
    rows = []
    for top_k in range(1, 9):
        times = dispatch_mode_times(MODEL, top_k, N, link)
        rows.append({
            "top_k": top_k,
            "a2a_roundtrip": 2 * times["a2a"],
            "agrs_roundtrip": times["ag"] + times["rs"],
            "a2a": times["a2a"],
            "ag": times["ag"],
            "rs": times["rs"],
        })
    crossover = dispatch_crossover_top_k(MODEL, N, link)
    return rows, crossover


@pytest.mark.benchmark(group="fig7")
def test_fig7_dispatch_crossover(benchmark):
    rows, crossover = benchmark(run_fig7)
    report(
        "Fig. 7: dispatch collective time vs top-k (Mixtral-8x7B, n=8)",
        ["top-k", "A2A (ms)", "AG (ms)", "RS (ms)",
         "2xA2A (ms)", "AG+RS (ms)", "winner"],
        [[r["top_k"], r["a2a"] * 1e3, r["ag"] * 1e3, r["rs"] * 1e3,
          r["a2a_roundtrip"] * 1e3, r["agrs_roundtrip"] * 1e3,
          "AG/RS" if r["agrs_roundtrip"] <= r["a2a_roundtrip"]
          else "A2A"]
         for r in rows],
        notes=f"measured crossover at top-k = {crossover} "
              f"(paper: > 6 favours AG/RS)",
    )

    # AG/RS flat in k; A2A monotone increasing.
    agrs = [r["agrs_roundtrip"] for r in rows]
    a2a = [r["a2a_roundtrip"] for r in rows]
    assert max(agrs) == pytest.approx(min(agrs))
    assert all(x < y for x, y in zip(a2a, a2a[1:]))
    # Crossover near the paper's top-k ≈ 6 on an 8-GPU node.
    assert 4 <= crossover <= 8
    # Small top-k: A2A wins; top-k = 8: AG/RS wins.
    assert a2a[0] < agrs[0]
    assert agrs[-1] < a2a[-1]
