"""Eqs. 1–4 — analytic communication volumes vs bytes actually moved.

Cross-validates the paper's closed-form volume formulas against the
byte ledger of the *data-moving* simulated collectives, running each
parallel engine on real tensors.  This is the ground truth behind every
"communication-efficient" claim in §3.
"""

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.analysis import (
    ep_ffn_comm_volume,
    sp_attention_comm_volume,
    tp_attention_comm_volume,
    tp_ffn_comm_volume,
)
from repro.model.layers import SelfAttention
from repro.model.moe import MoELayer
from repro.parallel.ep_ffn import EPFFNEngine
from repro.parallel.sp_attention import SPAttentionEngine
from repro.parallel.tp_attention import TPAttentionEngine
from repro.parallel.tp_ffn import TPFFNEngine
from repro.tensor import Tensor

B, S, H, FH, E, K, N, M = 2, 16, 32, 48, 8, 2, 4, 2


def shard(x, n):
    s = x.shape[1]
    return [Tensor(x[:, r * s // n:(r + 1) * s // n].copy())
            for r in range(n)]


def measure(engine_name):
    rng = np.random.default_rng(0)
    world = World(N, N)
    x = rng.standard_normal((B, S, H))
    if engine_name in ("sp_attn", "tp_attn"):
        attn = SelfAttention(rng, H, 8, M, dtype=np.float64)
        cls = SPAttentionEngine if engine_name == "sp_attn" \
            else TPAttentionEngine
        engine = cls(world.full_group(), attn)
        world.ledger.clear()
        engine.forward(shard(x, N), S)
    else:
        moe = MoELayer(rng, H, FH, E, K, dtype=np.float64)
        if engine_name == "tp_ffn":
            engine = TPFFNEngine(world.full_group(), moe)
        else:
            mode = "a2a" if engine_name == "ep_a2a" else "ag_rs"
            engine = EPFFNEngine(world.full_group(), moe, mode=mode)
        world.ledger.clear()
        engine.forward(shard(x, N))
    return sum(r.total_bytes for r in world.ledger.records
               if not r.tag.endswith(":bwd")) / 8.0  # fp64 elements


def run_volumes():
    formulas = {
        "tp_attn": ("Eq. 1", tp_attention_comm_volume(B, S, H, N) * N),
        "sp_attn": ("Eq. 2 / 2",
                    sp_attention_comm_volume(B, S, H, N, M) * N / 2),
        "ep_a2a": ("Eq. 3 (bound)",
                   ep_ffn_comm_volume(B, S, H, N, K) * N),
        "ep_agrs": ("Eq. 4", tp_ffn_comm_volume(B, S, H, N) * N),
        "tp_ffn": ("Eq. 4", tp_ffn_comm_volume(B, S, H, N) * N),
    }
    rows = []
    for name, (eq, formula) in formulas.items():
        measured = measure(name)
        rows.append({"engine": name, "eq": eq, "formula": formula,
                     "measured": measured})
    return rows


@pytest.mark.benchmark(group="eq-volumes")
def test_eq_comm_volumes(benchmark):
    rows = benchmark(run_volumes)
    report(
        "Eqs. 1-4: analytic vs measured per-pass comm volume (elements,"
        " all ranks)",
        ["engine", "formula", "analytic", "measured", "measured/analytic"],
        [[r["engine"], r["eq"], r["formula"], r["measured"],
          f"{r['measured'] / r['formula']:.3f}"] for r in rows],
        notes="Eq. 2 as printed counts both A2A directions; the per-pass"
              " volume is exactly half. Eq. 3 is an upper bound for"
              " random routing (self-destined tokens stay local).",
    )

    by_name = {r["engine"]: r for r in rows}
    # Exact identities.
    for exact in ("tp_attn", "sp_attn", "ep_agrs", "tp_ffn"):
        r = by_name[exact]
        assert r["measured"] == pytest.approx(r["formula"], rel=1e-9), \
            exact
    # A2A dispatch: Eq. 3 is the uniform-routing *expectation*; the
    # realized volume fluctuates around it but never exceeds the
    # all-remote hard bound 2k·bsh/n per rank.
    a2a = by_name["ep_a2a"]
    assert a2a["measured"] == pytest.approx(a2a["formula"], rel=0.25)
    hard_bound = 2 * K * B * S * H / N * N  # every routed row remote
    assert a2a["measured"] <= hard_bound
    # The §3 ordering: SP < TP for attention, EP(A2A, k<n) < TP for FFN.
    assert by_name["sp_attn"]["measured"] < \
        by_name["tp_attn"]["measured"]
    assert by_name["ep_a2a"]["measured"] < by_name["tp_ffn"]["measured"]
