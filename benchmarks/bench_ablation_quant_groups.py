"""Ablation — FP8 backward-communication quantization group size (§5).

The paper groups backward per-channel quantization along the token
dimension "using a small group size (e.g., 128)".  This bench sweeps
the group size on a gradient tensor whose magnitude drifts along tokens
(the regime that motivates grouping) and reports reconstruction error
and wire overhead (scales are FP32).
"""

import numpy as np
import pytest

from conftest import report
from repro.precision.quantize import (
    dequantize,
    quantize_grouped,
    quantize_per_channel,
)

TOKENS, CHANNELS = 4096, 64
GROUP_SIZES = [32, 64, 128, 256, 512]


def make_drifting_gradient(seed=0):
    """Per-token magnitude drifting over 3 decades — typical of
    accumulated gradients across a long sequence."""
    rng = np.random.default_rng(seed)
    scale = 10.0 ** np.linspace(-1.5, 1.5, TOKENS)[:, None]
    return rng.standard_normal((TOKENS, CHANNELS)) * scale


def run_sweep():
    grad = make_drifting_gradient()
    rows = []
    base = quantize_per_channel(grad)
    base_err = np.abs(dequantize(base) - grad).mean()
    rows.append({"group": "none (per-channel)", "err": base_err,
                 "overhead": (base.nbytes_on_wire - grad.size)
                 / grad.size})
    for size in GROUP_SIZES:
        q = quantize_grouped(grad, group_size=size)
        err = np.abs(dequantize(q) - grad).mean()
        rows.append({"group": size, "err": err,
                     "overhead": (q.nbytes_on_wire - grad.size)
                     / grad.size})
    return rows, base_err


@pytest.mark.benchmark(group="ablation-quant")
def test_ablation_quant_group_size(benchmark):
    rows, base_err = benchmark(run_sweep)
    report(
        "Ablation: FP8 backward-comm quantization group size",
        ["group size", "mean abs err", "wire overhead vs raw FP8"],
        [[r["group"], f"{r['err']:.5f}",
          f"{r['overhead'] * 100:.2f}%"] for r in rows],
        notes="paper uses group size 128: near-minimal error at a few "
              "percent scale overhead",
    )

    grouped = {r["group"]: r for r in rows if r["group"] !=
               "none (per-channel)"}
    # Any grouping beats one scale per channel under magnitude drift.
    for size, r in grouped.items():
        assert r["err"] < base_err, size
    # Error grows monotonically with group size (coarser scales).
    errs = [grouped[s]["err"] for s in GROUP_SIZES]
    assert all(a <= b * (1 + 1e-9) for a, b in zip(errs, errs[1:]))
    # The paper's 128 choice: within 2.5x of the finest group's error at
    # under 2% wire overhead.
    assert grouped[128]["err"] < errs[0] * 2.5
    assert grouped[128]["overhead"] < 0.05
