#!/usr/bin/env python
"""Benchmark-regression harness: normalized metrics vs a committed baseline.

Collects a curated set of *deterministic* performance numbers — the
analytic perf model, the discrete-event overlap simulator, and the
fixed-seed byte ledger of a real traced training run — normalizes them
into ``BENCH_PR<N>.json``, and compares against the newest baseline
committed under ``benchmarks/baselines/``.  Every metric is
machine-independent (closed forms, simulated clocks, exact byte
accounting — never wall time), so a >tolerance delta is a real change
in modelled behaviour, not runner noise, and CI can fail on it.

Usage::

    PYTHONPATH=src python benchmarks/regression.py --smoke
    PYTHONPATH=src python benchmarks/regression.py --update --pr 3

``--smoke`` shrinks the traced-run portion for PR CI; the analytic and
simulated metrics are identical in both modes.  ``--update`` writes the
collected numbers as the new committed baseline (do this once per PR,
and commit the file).  Exit codes: 0 ok, 1 regression (or failed comm
audit), 2 usage error.
"""

import argparse
import glob
import json
import os
import re
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

BASELINE_DIR = os.path.join(_ROOT, "benchmarks", "baselines")

#: Metrics where a larger value is an improvement; everything else
#: regresses when it grows.
HIGHER_IS_BETTER = {"perf.mfu", "serve.throughput_tokens_per_s",
                    "plan.schedule_layer_gain"}

#: Per-metric relative tolerance overrides (default: --tolerance).
TOLERANCES = {
    # Exact byte accounting: any drift is a real comm-volume change.
    "comm.fwd_bytes_per_layer_pass": 0.001,
    "comm.total_bytes": 0.001,
    # Enumeration counts are exact integers: any drift means the plan
    # space itself changed shape.
    "plan.n_enumerated": 0.001,
    "plan.n_feasible": 0.001,
    # Reshard accounting is exact interval arithmetic.
    "elastic.reshard_bytes": 0.001,
    "elastic.reshard_seconds_modelled": 0.001,
    # Serving runs on a virtual clock over a seeded trace: latency
    # percentiles and bridge bytes are exact numbers, not wall time.
    "serve.p50_latency_s": 0.001,
    "serve.p99_latency_s": 0.001,
    "serve.iterations": 0.001,
    "serve.bridge_bytes": 0.001,
}


def perf_model_metrics():
    """Analytic Table-3 point: internal-352b on 720 H800s."""
    from repro.core.config import (GPU_SPECS, MODEL_ZOO, ParallelConfig,
                                   TrainConfig)
    from repro.perf.systems import MegaScalePerfModel

    model = MODEL_ZOO["internal-352b"]
    gpu = GPU_SPECS["h800"]
    train = TrainConfig(global_batch_size=720)
    it = MegaScalePerfModel().iteration(
        model, ParallelConfig.megascale(8, 15, 6), train, gpu)
    return {
        "perf.iteration_time_s": it.iteration_time,
        "perf.exposed_comm_fraction": it.fraction("exposed_comm_time"),
        "perf.mfu": it.mfu(model, gpu),
        "perf.tokens_per_second": it.tokens_per_second,
    }


def sim_metrics():
    """Simulated one-layer forward under holistic overlap scheduling."""
    from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig
    from repro.core.operators import build_forward_graph
    from repro.core.schedule import HolisticScheduler
    from repro.perf.estimator import KernelModel
    from repro.sim import simulate

    model = MODEL_ZOO["internal-352b"]
    gpu = GPU_SPECS["h800"]
    graph = build_forward_graph(
        model, ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1)
    timeline = simulate(HolisticScheduler().schedule(
        graph, KernelModel(gpu).durations(graph)))
    return {
        "sim.layer_fwd_makespan_s": timeline.makespan,
        "sim.layer_fwd_exposed_comm_s": timeline.exposed_comm,
    }


def tile_metrics():
    """Tile-granular (§4.2) one-layer forward: tiled vs untiled sim.

    Deterministic by construction: tile counts come from the graph
    transform, durations from the roofline model, and the makespans
    from the event simulator — no wall clock anywhere.
    """
    from repro.core.config import MODEL_ZOO, ParallelConfig
    from repro.core.executor_bindings import layer_program
    from repro.core.operators import tiled_members
    from repro.sim import simulate

    model = MODEL_ZOO["internal-352b"]
    pc = ParallelConfig.megascale(8, ep_dispatch="ag_rs")
    seq, tile_tokens = 4096, 128  # local shard 512 -> 4 token chunks
    untiled = layer_program(model, pc, 1, seq)
    tiled = layer_program(model, pc, 1, seq, tile_tokens=tile_tokens)
    t_untiled = simulate(untiled.tasks)
    t_tiled = simulate(tiled.tile_tasks)
    return {
        "tile.layer_fwd_makespan_s": t_tiled.makespan,
        "tile.layer_fwd_exposed_comm_s": t_tiled.exposed_comm,
        "tile.makespan_vs_untiled": t_tiled.makespan
            / t_untiled.makespan,
        "tile.sub_ops": float(sum(
            len(ts) for ts in tiled_members(tiled.tile_graph).values())),
    }


def traced_run_metrics(smoke, out_dir=None):
    """Fixed-seed traced training run: audited byte volumes per layer.

    Returns the metrics dict; raises ``RuntimeError`` if the Eq. 1–4
    audit or the tracer/ledger cross-check fails (a broken ledger must
    never silently become the new baseline).
    """
    import numpy as np

    from repro.comm import World
    from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
    from repro.core.trainer import MegaScaleTrainer
    from repro.data import MarkovCorpus, batch_iterator
    from repro.model import MoETransformer
    from repro.obs import (Observability, audit_comm_volumes,
                           crosscheck_tracer_ledger, write_chrome_trace)
    from repro.precision.optimizer import AdamW

    steps = 1 if smoke else 3
    n = 4
    config = ModelConfig("bench-regression", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=16)
    train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                        seq_len=16, learning_rate=3e-3,
                        aux_loss_coeff=0.01)
    model = MoETransformer(config, seed=0, dtype=np.float64)
    obs = Observability.create()
    world = World(n, n)
    trainer = MegaScaleTrainer(
        model, world, ParallelConfig.megascale(n, ep_dispatch="ag_rs"),
        train, optimizer=AdamW(model.parameters(), lr=3e-3), obs=obs)
    for batch in batch_iterator(MarkovCorpus(vocab_size=64, seed=0),
                                4, 16, seed=1, limit=steps):
        trainer.train_step(batch)

    passes = config.n_layers * steps
    report = audit_comm_volumes(
        world.ledger, b=4, s=16, h=32, n=n, m=config.gqa_ratio,
        k=config.top_k, elem_bytes=8.0, passes=passes)
    if not report.ok:
        raise RuntimeError(
            "comm-volume audit failed:\n" + report.render())
    matched, traced, ledger_bytes = crosscheck_tracer_ledger(
        obs.tracer, world.ledger)
    if not matched:
        raise RuntimeError(
            f"traced bytes {traced} != ledger bytes {ledger_bytes}")

    if out_dir is not None:
        write_chrome_trace(
            os.path.join(out_dir, "trace_regression.json"), obs.tracer,
            extra_metadata={"harness": "benchmarks/regression.py",
                            "steps": steps})

    fwd_bytes = sum(r.total_bytes for r in world.ledger.records
                    if not r.tag.endswith(":bwd"))
    snap = obs.metrics.snapshot()
    return {
        "comm.fwd_bytes_per_layer_pass": fwd_bytes / passes,
        "comm.total_bytes": snap["comm.bytes.total"] / steps,
        "comm.calls_per_step": snap["comm.calls.total"] / steps,
    }


def elastic_metrics():
    """Elastic resize vs cold restart on a fixed-seed run.

    Replay counts and reshard bytes are exact (interval arithmetic on
    the ZeRO-1 shard grids + contiguous-block expert placement), so
    any drift is a real change in the elastic subsystem's behaviour.
    """
    import shutil
    import tempfile

    import numpy as np

    from repro.comm import World
    from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
    from repro.core.runner import FaultInjector, ProductionRunner
    from repro.core.trainer import MegaScaleTrainer
    from repro.elastic import ElasticRunner, ParallelLayout
    from repro.model import MoETransformer
    from repro.precision.optimizer import AdamW

    config = ModelConfig("bench-elastic", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=16)
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=16, learning_rate=1e-2,
                        aux_loss_coeff=0.01)

    def layout_at(n):
        return ParallelLayout.from_parallel_config(
            ParallelConfig.megascale(n))

    def factory(layout=layout_at(4)):
        n = layout.world_size
        model = MoETransformer(config, seed=0, dtype=np.float64)
        return MegaScaleTrainer(
            model, World(n, n), ParallelConfig.megascale(n), train,
            optimizer=AdamW(model.parameters(), lr=1e-2))

    rng = np.random.default_rng(0)
    batches = [rng.integers(0, 64, size=(2, 17)) for _ in range(8)]

    tmpdir = tempfile.mkdtemp(prefix="repro-bench-elastic-")
    try:
        cold = ProductionRunner(factory, os.path.join(tmpdir, "cold"),
                                checkpoint_interval=4)
        cold_metrics = cold.run(batches, FaultInjector(fault_steps=[6]))

        elastic = ElasticRunner(factory, layout_at(4),
                                os.path.join(tmpdir, "elastic"),
                                checkpoint_interval=4)
        elastic_metrics_log = elastic.run(
            batches, FaultInjector(resize_steps={6: layout_at(2)}))
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    return {
        "elastic.cold_restart_replayed_steps":
            float(cold_metrics.replayed_steps),
        "elastic.resize_replayed_steps":
            float(elastic_metrics_log.replayed_steps),
        "elastic.reshard_bytes": elastic_metrics_log.reshard_bytes,
        "elastic.reshard_seconds_modelled":
            elastic_metrics_log.reshard_seconds,
    }


def serve_metrics():
    """Continuous-batching serving run on the virtual clock.

    The trace is seeded, iteration costs are modelled, and the
    attention/expert bridge bytes come from the exact comm ledger, so
    every number here is machine-independent; the run also asserts the
    batched outputs match the unbatched sequential golden bitwise.
    """
    import numpy as np

    from repro.comm import World
    from repro.core.config import ModelConfig, ServeConfig
    from repro.model import MoETransformer
    from repro.obs import Tracer
    from repro.serve import (ServeEngine, VirtualClock, golden_decode,
                             poisson_trace)

    config = ModelConfig("bench-serve", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=64)
    model = MoETransformer(config, seed=0, dtype=np.float64)
    serve_config = ServeConfig(attention_ranks=2, expert_ranks=2,
                               kv_block_size=4, kv_blocks=64,
                               max_batch_size=4)
    requests = poisson_trace(8, rate=0.8, vocab=64, seed=0)
    world = World(serve_config.world_size)
    clock = VirtualClock()
    engine = ServeEngine(model, serve_config, world=world,
                         tracer=Tracer(clock=clock), clock=clock)
    try:
        result = engine.run(requests)
    finally:
        engine.shutdown()
    golden = golden_decode(model, serve_config, requests)
    for rid, want in golden.results.items():
        got = result.results[rid]
        if got.generated != want.generated or not all(
                np.array_equal(a, b)
                for a, b in zip(got.logits, want.logits)):
            raise RuntimeError(
                f"serve request {rid} diverged from the unbatched "
                "golden — a broken scheduler must never become the "
                "baseline")
    tags = world.ledger.bytes_by_tag()
    if tags["serve:dispatch_a2a"] != tags["serve:combine_a2a"]:
        raise RuntimeError("serve dispatch/combine bytes unbalanced")
    return {
        "serve.p50_latency_s": result.latency["p50"],
        "serve.p99_latency_s": result.latency["p99"],
        "serve.mean_latency_s": result.latency["mean"],
        "serve.throughput_tokens_per_s":
            result.latency["throughput_tokens"],
        "serve.iterations": float(result.n_iterations),
        "serve.bridge_bytes": tags["serve:dispatch_a2a"]
            + tags["serve:combine_a2a"],
    }


def plan_metrics():
    """Plan-space search on a fixed two-node cluster (PR 10).

    Enumeration counts are exact integers; the best simulated iteration
    time comes from the same closed-form + event-simulator stack as
    ``perf.*``/``sim.*``, and the schedule search is seeded — so every
    number is machine-independent.
    """
    from repro.core.autoschedule import optimize_plan
    from repro.core.cluster import ClusterSpec
    from repro.core.config import MODEL_ZOO, TrainConfig
    from repro.core.planner import plan_cluster

    model = MODEL_ZOO["mixtral-8x2b"]
    cluster = ClusterSpec.homogeneous("h800", n_nodes=2)
    train = TrainConfig(global_batch_size=64, micro_batch_size=2)
    result = plan_cluster(model, cluster, train)
    sched = optimize_plan(model, cluster, train, budget=60, seed=0)
    return {
        "plan.n_enumerated": float(result.n_enumerated),
        "plan.n_feasible": float(result.n_feasible),
        "plan.best_iteration_time_s": result.best.iteration_time,
        "plan.best_cross_node_a2a_gb":
            result.best.cross_node_a2a_bytes / 1e9,
        "plan.schedule_layer_gain": sched.layer_gain,
    }


def collect(smoke, out_dir=None):
    """All regression metrics as one flat name→value dict."""
    metrics = {}
    metrics.update(perf_model_metrics())
    metrics.update(sim_metrics())
    metrics.update(tile_metrics())
    metrics.update(plan_metrics())
    metrics.update(traced_run_metrics(smoke, out_dir))
    metrics.update(elastic_metrics())
    metrics.update(serve_metrics())
    return metrics


def latest_baseline():
    """(pr_number, payload) of the newest committed baseline, or None."""
    newest = None
    for path in glob.glob(os.path.join(BASELINE_DIR, "BENCH_PR*.json")):
        match = re.search(r"BENCH_PR(\d+)\.json$", path)
        if not match:
            continue
        number = int(match.group(1))
        if newest is None or number > newest[0]:
            newest = (number, path)
    if newest is None:
        return None
    with open(newest[1]) as handle:
        return newest[0], json.load(handle)


def compare(baseline, current, tolerance):
    """Signed worsening per metric; returns (rows, regressions).

    A positive ``worse`` fraction means the metric moved in its bad
    direction (slower, more exposed comm, lower MFU, more bytes).
    """
    rows = []
    regressions = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            regressions.append((name, "metric disappeared"))
            continue
        cur = current[name]
        if base == 0.0:
            worse = 0.0 if cur == 0.0 else float("inf")
        else:
            change = (cur - base) / abs(base)
            worse = -change if name in HIGHER_IS_BETTER else change
        allowed = TOLERANCES.get(name, tolerance)
        ok = worse <= allowed
        rows.append((name, base, cur, worse, allowed, ok))
        if not ok:
            regressions.append(
                (name, f"worse by {worse:.1%} (allowed {allowed:.1%})"))
    return rows, regressions


def render_rows(rows):
    """Baseline-vs-current comparison table."""
    lines = [f"{'metric':32s} {'baseline':>14s} {'current':>14s} "
             f"{'worse by':>9s} {'ok':>4s}"]
    for name, base, cur, worse, _allowed, ok in rows:
        lines.append(f"{name:32s} {base:14.6g} {cur:14.6g} "
                     f"{worse:8.2%} {'yes' if ok else 'NO':>4s}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="deterministic benchmark-regression harness")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink the traced run for PR CI")
    parser.add_argument("--update", action="store_true",
                        help="write the result as the committed baseline")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number for the output file name "
                             "(default: newest baseline's)")
    parser.add_argument("--out-dir", default="bench_artifacts",
                        help="artifact directory (JSON + trace)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="default relative regression tolerance")
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    previous = latest_baseline()
    pr = args.pr
    if pr is None:
        pr = previous[0] if previous else 0

    try:
        metrics = collect(args.smoke, args.out_dir)
    except RuntimeError as exc:
        print(f"metric collection failed: {exc}", file=sys.stderr)
        return 1
    payload = {
        "pr": pr,
        "smoke": bool(args.smoke),
        "tolerance": args.tolerance,
        "tolerances": TOLERANCES,
        "higher_is_better": sorted(HIGHER_IS_BETTER),
        "metrics": metrics,
    }
    out_path = os.path.join(args.out_dir, f"BENCH_PR{pr}.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    if args.update:
        os.makedirs(BASELINE_DIR, exist_ok=True)
        base_path = os.path.join(BASELINE_DIR, f"BENCH_PR{pr}.json")
        with open(base_path, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"updated baseline {base_path}")

    if previous is None:
        print("no committed baseline; nothing to compare against")
        return 0
    base_pr, base_payload = previous
    rows, regressions = compare(base_payload["metrics"], metrics,
                                args.tolerance)
    print(f"\n=== vs baseline BENCH_PR{base_pr}.json ===")
    print(render_rows(rows))
    if regressions:
        for name, why in regressions:
            print(f"REGRESSION: {name}: {why}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
