"""Ablation — CP attention vs Ulysses SP (§3.1 'Balanced vs imbalanced').

The paper explored context parallelism with a zigzag layout before
settling on Ulysses-style SP.  This bench quantifies the two §3.1
complaints against CP on the simulated substrate:

1. causal workload imbalance — the straggler rank gates the pipeline,
   so effective attention time is ``imbalance ×`` the mean;
2. even zigzag-balanced CP still pays K/V ring traffic on the critical
   path, while SP's two all-to-alls shrink with both n and the GQA
   ratio.
"""

import pytest

from conftest import report
from repro.core.analysis import sp_attention_comm_volume
from repro.core.config import GPU_SPECS, MODEL_ZOO
from repro.parallel.cp_attention import (
    cp_attention_comm_volume,
    cp_imbalance,
)
from repro.perf.estimator import KernelModel

GPU = GPU_SPECS["h800"]
N = 8


def run_comparison():
    km = KernelModel(GPU)
    link = km.intra_link()
    rows = []
    for name in ("mixtral-8x7b", "hunyuan-large", "deepseekmoe"):
        model = MODEL_ZOO[name]
        b, s, h, m = 1, model.seq_len, model.hidden_size, model.gqa_ratio

        # Communication per pass (bytes, BF16).
        sp_bytes = sp_attention_comm_volume(b, s, h, N, m) / 2 * 2.0
        cp_bytes = cp_attention_comm_volume(b, s, h, N, m) * 2.0
        sp_time = sp_bytes / (link.bandwidth * link.a2a_efficiency)
        cp_time = cp_bytes / link.bandwidth  # ring

        # Attention compute with the straggler penalty.
        attn_flops = 2 * 2 * b * s * (s / 2) * h / N
        base = attn_flops / (GPU.peak_flops * km.attn_eff)
        rows.append({
            "model": name,
            "sp_comm_ms": sp_time * 1e3,
            "cp_comm_ms": cp_time * 1e3,
            "attn_ms": base * 1e3,
            "cp_contig_straggler": base * cp_imbalance(s, N) * 1e3,
            "cp_zigzag_straggler": base * cp_imbalance(s, N, "zigzag")
            * 1e3,
        })
    return rows


@pytest.mark.benchmark(group="ablation-cp")
def test_ablation_cp_vs_sp(benchmark):
    rows = benchmark(run_comparison)
    report(
        "Ablation: CP vs SP attention (per rank, per pass, n=8)",
        ["model", "SP comm (ms)", "CP comm (ms)", "mean attn (ms)",
         "CP contiguous straggler", "CP zigzag straggler"],
        [[r["model"], r["sp_comm_ms"], r["cp_comm_ms"], r["attn_ms"],
          r["cp_contig_straggler"], r["cp_zigzag_straggler"]]
         for r in rows],
        notes="contiguous CP's straggler does ~1.9x the mean work; "
              "zigzag fixes balance but not the ring traffic (§3.1)",
    )

    for r in rows:
        # Contiguous CP's straggler costs ~1.9x the mean compute.
        assert r["cp_contig_straggler"] > 1.7 * r["attn_ms"]
        # Zigzag restores balance (in this first-order model; real
        # kernels keep residual block-level imbalance, and the paper
        # adds that imbalance "disturbs the training pipeline").
        assert r["cp_zigzag_straggler"] == pytest.approx(r["attn_ms"],
                                                         rel=1e-6)
        # The decision the paper made: SP's total attention path beats
        # contiguous CP's (comm + straggler compute) on every model.
        sp_total = r["sp_comm_ms"] + r["attn_ms"]
        cp_total = r["cp_comm_ms"] + r["cp_contig_straggler"]
        assert sp_total < cp_total, r["model"]
