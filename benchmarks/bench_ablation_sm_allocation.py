"""Ablation — SM allocation for fused A2A kernels (§4.2).

"We allocate a small number of SMs for communication ... The number of
SMs for communication is tuned to make communication and computation
exhibit similar latency."  This bench sweeps the allocation for the
fused QKV+A2A and GroupedGEMM+A2A kernels of Mixtral-8×7B and locates
the optimum, verifying the paper's two claims: the optimum is a small
fraction of the device, and it is (near-)latency-balanced.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig
from repro.core.operators import build_forward_graph
from repro.perf.sm_allocation import (
    SM_COMM_SATURATION_FRACTION,
    fused_kernel_time,
    optimal_sm_fraction,
)

GPU = GPU_SPECS["h800"]
MODEL = MODEL_ZOO["mixtral-8x7b"]
SWEEP = [0.02, 0.05, 0.08, 0.10, 0.15, 0.25, 0.40]


def kernel_pairs():
    graph = build_forward_graph(
        MODEL, ParallelConfig.megascale(8, ep_dispatch="a2a"), 1)
    return {
        "QKV+A2A": (graph["qkv_a2a"].comm_bytes,
                    graph["qkv_proj"].flops),
        "GroupedGEMM+A2A": (graph["combine_a2a"].comm_bytes,
                            graph["fc2"].flops),
    }


def run_sweep():
    rows = []
    optima = {}
    for label, (comm_bytes, flops) in kernel_pairs().items():
        for f in SWEEP:
            alloc = fused_kernel_time(comm_bytes, flops, GPU, f)
            rows.append([label, f, alloc.compute_time * 1e6,
                         alloc.comm_time * 1e6,
                         alloc.duration * 1e6])
        optima[label] = optimal_sm_fraction(comm_bytes, flops, GPU)
    return rows, optima


@pytest.mark.benchmark(group="ablation-sm")
def test_ablation_sm_allocation(benchmark):
    rows, optima = benchmark(run_sweep)
    report(
        "Ablation: SM allocation for fused A2A kernels (us)",
        ["kernel", "SM fraction", "compute", "comm", "fused duration"],
        rows,
        notes="; ".join(
            f"{label}: optimum f={alloc.sm_fraction:.3f} "
            f"({alloc.duration * 1e6:.0f} us)"
            for label, alloc in optima.items()),
    )

    for label, alloc in optima.items():
        # 'A small number of SMs' — at most the saturation fraction.
        assert alloc.sm_fraction <= SM_COMM_SATURATION_FRACTION + 1e-9
        # The optimum beats every swept point.
        for f in SWEEP:
            comm_bytes, flops = kernel_pairs()[label]
            candidate = fused_kernel_time(comm_bytes, flops, GPU, f)
            assert alloc.duration <= candidate.duration * (1 + 1e-9)
        # Balanced (or comm-saturated) at the optimum — §4.2's rule.
        if alloc.sm_fraction < SM_COMM_SATURATION_FRACTION - 1e-9:
            assert alloc.compute_time == pytest.approx(
                alloc.comm_time, rel=1e-6)
