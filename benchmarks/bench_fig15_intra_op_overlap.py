"""Figure 15 — intra-operator overlap: fused vs sequential op pairs.

Paper setup: four key communication+computation pairs per layer in the
forward pass — (i) QKV Projection + all-to-all, (ii) all-to-all + Output
Projection, (iii) all-gather + scatter + GroupedGEMM, (iv) GroupedGEMM +
gather + reduce-scatter — across the six Table 2 models.  Paper results:
the fused kernels cut the combined time by 1.2–4.7×, and intra-operator
overlap alone trims iteration time by 7.1–12.9%.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.core.operators import build_forward_graph
from repro.core.schedule import FusedKernel, OverlapConfig
from repro.perf.estimator import KernelModel
from repro.perf.systems import MegaScalePerfModel

GPU = GPU_SPECS["h800"]
MODELS = ["internal-352b", "mixtral-8x7b", "mixtral-8x22b",
          "hunyuan-large", "phi-3.5-moe", "deepseekmoe"]

PAIRS = {
    "QKV+A2A": ("gemm+a2a", ["qkv_proj"], ["qkv_a2a"]),
    "A2A+OutProj": ("a2a+gemm", ["out_proj"], ["attn_a2a"]),
    "AG+scatter+GroupedGEMM": ("ag+scatter+ggemm",
                               ["scatter", "fc1"], ["ffn_ag"]),
    "GroupedGEMM+gather+RS": ("ggemm+gather+rs",
                              ["fc2", "gather"], ["ffn_rs"]),
}


def pair_times(model_name):
    """Sequential vs fused time for each §4.2 kernel pair."""
    model = MODEL_ZOO[model_name]
    km = KernelModel(GPU)
    # Force AG/RS dispatch so all four pairs exist in the graph.
    graph = build_forward_graph(
        model, ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1)
    durations = km.durations(graph)
    out = {}
    for label, (_, compute_names, comm_names) in PAIRS.items():
        compute = sum(durations[n] for n in compute_names if n in graph)
        comm = sum(durations[n] for n in comm_names if n in graph)
        kernel = FusedKernel(label, [], comm_time=comm,
                             compute_time=compute)
        out[label] = (kernel.sequential_duration, kernel.duration)
    return out


def run_fig15():
    pair_results = {name: pair_times(name) for name in MODELS}

    # Iteration-time gain from intra-op overlap alone (right panel).
    iter_gains = {}
    train = TrainConfig(global_batch_size=32)
    for name in MODELS:
        model = MODEL_ZOO[name].scaled(n_layers=4)
        pc = ParallelConfig.megascale(8, 1, 4)
        full = MegaScalePerfModel().iteration(model, pc, train, GPU)
        inter_only = MegaScalePerfModel(
            overlap=OverlapConfig(inter_op=True, intra_op=False)
        ).iteration(model, pc, train, GPU)
        iter_gains[name] = 1 - full.iteration_time \
            / inter_only.iteration_time
    return pair_results, iter_gains


@pytest.mark.benchmark(group="fig15")
def test_fig15_intra_op_overlap(benchmark):
    pair_results, iter_gains = benchmark(run_fig15)

    table = []
    for name in MODELS:
        for label, (seq, fused) in pair_results[name].items():
            table.append([name, label, seq * 1e6, fused * 1e6,
                          f"{seq / fused:.2f}x"])
    report(
        "Fig. 15: fused vs sequential comm+compute pairs (us)",
        ["model", "kernel pair", "sequential", "fused", "reduction"],
        table,
        notes="paper: 1.2-4.7x combined-time reduction",
    )
    report(
        "Fig. 15 (right): iteration-time gain from intra-op overlap",
        ["model", "gain"],
        [[name, f"{gain * 100:.1f}%"]
         for name, gain in iter_gains.items()],
        notes="paper: 7.1%-12.9% iteration-time reduction",
    )

    ratios = [seq / fused
              for pairs in pair_results.values()
              for seq, fused in pairs.values()]
    # Every pair benefits; reductions fall in the paper's 1.2-4.7 band
    # (allowing the fill/drain floor of ~1.1 at the low end).
    assert min(ratios) > 1.05
    assert max(ratios) < 4.7
    assert max(ratios) > 1.5  # some pairs gain a lot
    for name, gain in iter_gains.items():
        assert 0.02 < gain < 0.20, (name, gain)
