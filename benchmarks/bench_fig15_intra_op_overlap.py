"""Figure 15 — intra-operator overlap: fused vs sequential op pairs.

Paper setup: four key communication+computation pairs per layer in the
forward pass — (i) QKV Projection + all-to-all, (ii) all-to-all + Output
Projection, (iii) all-gather + scatter + GroupedGEMM, (iv) GroupedGEMM +
gather + reduce-scatter — across the six Table 2 models.  Paper results:
the fused kernels cut the combined time by 1.2–4.7×, and intra-operator
overlap alone trims iteration time by 7.1–12.9%.
"""

import numpy as np
import pytest

from conftest import report
from repro.comm.group import World
from repro.core.config import GPU_SPECS, MODEL_ZOO, ModelConfig, \
    ParallelConfig, TrainConfig
from repro.core.operators import build_forward_graph
from repro.core.schedule import FusedKernel, OverlapConfig
from repro.core.trainer import MegaScaleTrainer
from repro.model.transformer import MoETransformer
from repro.obs.tracer import Tracer
from repro.perf.estimator import (TILE_SPAN_PREFIX, KernelModel,
                                  calibrate_from_spans,
                                  calibrated_durations)
from repro.perf.systems import MegaScalePerfModel
from repro.runtime.dag_executor import tile_conformance_problems
from repro.sim.engine import SimTask, simulate

GPU = GPU_SPECS["h800"]
MODELS = ["internal-352b", "mixtral-8x7b", "mixtral-8x22b",
          "hunyuan-large", "phi-3.5-moe", "deepseekmoe"]

PAIRS = {
    "QKV+A2A": ("gemm+a2a", ["qkv_proj"], ["qkv_a2a"]),
    "A2A+OutProj": ("a2a+gemm", ["out_proj"], ["attn_a2a"]),
    "AG+scatter+GroupedGEMM": ("ag+scatter+ggemm",
                               ["scatter", "fc1"], ["ffn_ag"]),
    "GroupedGEMM+gather+RS": ("ggemm+gather+rs",
                              ["fc2", "gather"], ["ffn_rs"]),
}


def pair_times(model_name):
    """Sequential vs fused time for each §4.2 kernel pair."""
    model = MODEL_ZOO[model_name]
    km = KernelModel(GPU)
    # Force AG/RS dispatch so all four pairs exist in the graph.
    graph = build_forward_graph(
        model, ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1)
    durations = km.durations(graph)
    out = {}
    for label, (_, compute_names, comm_names) in PAIRS.items():
        compute = sum(durations[n] for n in compute_names if n in graph)
        comm = sum(durations[n] for n in comm_names if n in graph)
        kernel = FusedKernel(label, [], comm_time=comm,
                             compute_time=compute)
        out[label] = (kernel.sequential_duration, kernel.duration)
    return out


def run_fig15():
    pair_results = {name: pair_times(name) for name in MODELS}

    # Iteration-time gain from intra-op overlap alone (right panel).
    iter_gains = {}
    train = TrainConfig(global_batch_size=32)
    for name in MODELS:
        model = MODEL_ZOO[name].scaled(n_layers=4)
        pc = ParallelConfig.megascale(8, 1, 4)
        full = MegaScalePerfModel().iteration(model, pc, train, GPU)
        inter_only = MegaScalePerfModel(
            overlap=OverlapConfig(inter_op=True, intra_op=False)
        ).iteration(model, pc, train, GPU)
        iter_gains[name] = 1 - full.iteration_time \
            / inter_only.iteration_time
    return pair_results, iter_gains


# -- measured path: execute, trace, calibrate, simulate ----------------------
#
# The analytic path above *models* the §4.2 fused kernels; the measured
# path runs a real tiled DAG training step, calibrates per-tile
# durations from the ``dag.tile:``/``dag.op:`` spans the execution
# traced, and replays each fused group through the event simulator —
# tiled (comm tile i overlapping compute tile i-1's successor) vs
# strictly sequential.  The speedups below are therefore grounded in
# wall-clock measurements of this testbed, not just the roofline model.

#: The four §4.2 fused kernels as tile-decomposed groups of the
#: AG/RS-dispatch MegaScale graph.
MEASURED_PAIRS = {
    "a2a+attn/fwd": "A2A + Attention",
    "a2a+gemm/fwd": "A2A + OutProj",
    "ag+scatter+ggemm/fwd": "AG + scatter + GroupedGEMM",
    "ggemm+gather+rs/fwd": "GroupedGEMM + gather + RS",
}

_MEASURED_RANKS = 4
_MEASURED_SEQ = 16


def _traced_tiled_program(tile_tokens):
    """One traced tiled training step; returns (program, tracer,
    executed tile stream)."""
    config = ModelConfig("bench-fig15", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=_MEASURED_SEQ)
    model = MoETransformer(config, seed=0, dtype=np.float64)
    world = World(_MEASURED_RANKS, _MEASURED_RANKS)
    world.tracer = tracer = Tracer()
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=_MEASURED_SEQ, backend="dag",
                        tile_tokens=tile_tokens)
    trainer = MegaScaleTrainer(
        model, world,
        ParallelConfig.megascale(_MEASURED_RANKS, ep_dispatch="ag_rs"),
        train)
    rng = np.random.default_rng(0)
    trainer.train_step(rng.integers(0, 64, size=(2, _MEASURED_SEQ + 1)))
    program = trainer.dag_program_for(_MEASURED_SEQ)
    return program, tracer, trainer.engines[0].last_executed_tiles


def _calibrated_tile_durations(program, tracer):
    """Span-calibrated per-tile durations: ``dag.op:`` spans fit the
    (tile-expanded) binding anchors, ``dag.tile:`` spans then pin each
    comm tile directly."""
    km = KernelModel(GPU)
    merged = calibrate_from_spans(km, program.tile_graph, tracer.spans)
    per_tile = calibrate_from_spans(km, program.tile_graph, tracer.spans,
                                    prefix=TILE_SPAN_PREFIX)
    merged.anchors.update(per_tile.anchors)
    merged.op_anchor.update(per_tile.op_anchor)
    return calibrated_durations(km, program.tile_graph, merged)


def _group_members(program, key):
    """Tile sub-ops of one fused group, in graph order."""
    return [op.name for op in program.tile_graph
            if op.tile is not None
            and f"{op.fuse_group}/{op.phase}" == key]


def measured_pair_times(tile_tokens=2):
    """Measured sequential vs tiled time per §4.2 fused group.

    Returns ``{label: (sequential_s, tiled_s)}`` where sequential runs
    the group's tiles back-to-back and tiled pipelines them on separate
    comm/compute streams with the tile graph's real dependencies.
    """
    program, tracer, executed = _traced_tiled_program(tile_tokens)
    assert tile_conformance_problems(program, executed) == []
    durations = _calibrated_tile_durations(program, tracer)
    out = {}
    for key, label in MEASURED_PAIRS.items():
        members = _group_members(program, key)
        if not members:
            continue
        member_set = set(members)
        tasks = [
            SimTask(name, durations[name],
                    "comm" if program.tile_graph[name].kind == "comm"
                    else "compute",
                    tuple(d for d in program.tile_graph[name].deps
                          if d in member_set),
                    program.tile_graph[name].kind == "comm")
            for name in members
        ]
        out[label] = (sum(durations[n] for n in members),
                      simulate(tasks).makespan)
    return out


def tile_width_sweep(widths=(1, 2, 4)):
    """Measured per-group tiled time across token-chunk widths."""
    sweep = {}
    for width in widths:
        sweep[width] = measured_pair_times(tile_tokens=width)
    return sweep


@pytest.mark.benchmark(group="fig15")
def test_fig15_measured_tile_overlap(benchmark):
    """Measured (span-calibrated) fused-vs-sequential §4.2 speedups."""
    sweep = benchmark(tile_width_sweep)

    table = []
    for width, pairs in sweep.items():
        for label, (seq_t, tiled_t) in pairs.items():
            table.append([f"tt={width}", label, seq_t * 1e6,
                          tiled_t * 1e6, f"{seq_t / tiled_t:.2f}x"])
    report(
        "Fig. 15 (measured): tiled vs sequential fused groups (us)",
        ["tile width", "kernel pair", "sequential", "tiled",
         "speedup"],
        table,
        notes="span-calibrated from a traced tiled DAG run; "
              "paper: 1.2-4.7x",
    )

    # Every §4.2 pair must gain from tiling at the default width.
    pairs = sweep[2]
    assert set(pairs) == set(MEASURED_PAIRS.values())
    for label, (seq_t, tiled_t) in pairs.items():
        assert tiled_t > 0.0
        assert seq_t / tiled_t > 1.0, (label, seq_t, tiled_t)
    # The widest chunk (one tile per dense group) still tiles the
    # rank-swizzled EP groups.
    assert "AG + scatter + GroupedGEMM" in sweep[4]


def test_sim_timeline_matches_traced_tile_order():
    """The simulated tile schedule and the traced/executed stream agree
    per op: same ascending §4.2 chunk order."""
    from repro.core.operators import base_op_name, tile_name

    program, tracer, executed = _traced_tiled_program(2)
    sim_order = simulate(program.tile_tasks).task_order()
    assert tile_conformance_problems(program, sim_order) == []
    traced = [s.name[len(TILE_SPAN_PREFIX):] for s in tracer.spans
              if s.name.startswith(TILE_SPAN_PREFIX)]
    assert traced
    for base in {base_op_name(t) for t in traced}:
        tiles = [t for t in traced if base_op_name(t) == base]
        count = len(set(tiles))
        want = [tile_name(base, i) for i in range(count)]
        assert tiles == want * (len(tiles) // count)
        assert [t for t in sim_order
                if base_op_name(t) == base] == want
        assert [t for t in executed
                if base_op_name(t) == base] == want


@pytest.mark.benchmark(group="fig15")
def test_fig15_intra_op_overlap(benchmark):
    pair_results, iter_gains = benchmark(run_fig15)

    table = []
    for name in MODELS:
        for label, (seq, fused) in pair_results[name].items():
            table.append([name, label, seq * 1e6, fused * 1e6,
                          f"{seq / fused:.2f}x"])
    report(
        "Fig. 15: fused vs sequential comm+compute pairs (us)",
        ["model", "kernel pair", "sequential", "fused", "reduction"],
        table,
        notes="paper: 1.2-4.7x combined-time reduction",
    )
    report(
        "Fig. 15 (right): iteration-time gain from intra-op overlap",
        ["model", "gain"],
        [[name, f"{gain * 100:.1f}%"]
         for name, gain in iter_gains.items()],
        notes="paper: 7.1%-12.9% iteration-time reduction",
    )

    ratios = [seq / fused
              for pairs in pair_results.values()
              for seq, fused in pairs.values()]
    # Every pair benefits; reductions fall in the paper's 1.2-4.7 band
    # (allowing the fill/drain floor of ~1.1 at the low end).
    assert min(ratios) > 1.05
    assert max(ratios) < 4.7
    assert max(ratios) > 1.5  # some pairs gain a lot
    for name, gain in iter_gains.items():
        assert 0.02 < gain < 0.20, (name, gain)
