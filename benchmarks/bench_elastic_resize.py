"""Elastic resize cost: steps-to-recover and reshard bytes vs cold restart.

The paper's production runs (§6.4, Fig. 19) restart every time the
fleet changes; `repro.elastic` instead absorbs a resize via
checkpoint–reshard–resume.  This bench quantifies the trade two ways:

1. Steps-to-recover: the same batch schedule loses a node mid-run —
   once handled as a cold restart (fixed-size runner restores the last
   periodic checkpoint and replays), once as an elastic resize (the
   runner checkpoints at the event step, reshards, and resumes with
   zero replay).  Reported per scenario: replayed step executions,
   state bytes moved, and the modelled reshard time.
2. Reshard cost by layout pair: exact bytes whose rank ownership
   changes (ZeRO-1 shard re-flattening + expert re-placement) for
   shrink/grow/deep-shrink pairs on the demo model, plus the analytic
   ZeRO movement for the 352B production model at Table-3 DP degrees.
"""

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import (MODEL_ZOO, ModelConfig, ParallelConfig,
                               TrainConfig)
from repro.core.runner import FaultInjector, ProductionRunner
from repro.core.trainer import MegaScaleTrainer
from repro.elastic import (
    ElasticRunner,
    ParallelLayout,
    reshard_state,
    zero1_moved_elements,
)
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("elastic-bench", n_layers=2, hidden_size=32,
                     n_heads=8, gqa_ratio=2, ffn_hidden_size=48,
                     n_experts=8, top_k=2, vocab_size=64, seq_len=16)
STEPS = 12
CHECKPOINT_INTERVAL = 4
EVENT_STEP = 6  # between checkpoints: a cold restart must replay


def layout_at(n):
    return ParallelLayout.from_parallel_config(
        ParallelConfig.megascale(n))


def make_factory():
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=16, learning_rate=1e-2,
                        aux_loss_coeff=0.01)

    def factory(layout=layout_at(4)):
        n = layout.world_size
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        return MegaScaleTrainer(
            model, World(n, n), ParallelConfig.megascale(n), train,
            optimizer=AdamW(model.parameters(), lr=1e-2))

    return factory


def make_batches(n):
    rng = np.random.default_rng(0)
    return [rng.integers(0, 64, size=(2, 17)) for _ in range(n)]


@pytest.mark.benchmark(group="elastic-resize")
def test_resize_vs_cold_restart(benchmark, tmp_path):
    batches = make_batches(STEPS)
    factory = make_factory()

    def run_both():
        cold = ProductionRunner(
            factory, str(tmp_path / "cold"),
            checkpoint_interval=CHECKPOINT_INTERVAL)
        cold_metrics = cold.run(batches,
                                FaultInjector(fault_steps=[EVENT_STEP]))

        elastic = ElasticRunner(
            factory, layout_at(4), str(tmp_path / "elastic"),
            checkpoint_interval=CHECKPOINT_INTERVAL)
        elastic_metrics = elastic.run(
            batches,
            FaultInjector(resize_steps={EVENT_STEP: layout_at(2)}))
        return cold_metrics, elastic_metrics, elastic

    cold_metrics, elastic_metrics, elastic = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    report(
        "Mid-run node loss: cold restart vs elastic resize "
        f"(event at step {EVENT_STEP}, interval "
        f"{CHECKPOINT_INTERVAL})",
        ["scenario", "step execs", "replayed", "restarts/resizes",
         "bytes moved (KiB)", "modelled reshard (us)"],
        [["cold restart (fixed 4 ranks)", len(cold_metrics.steps),
          cold_metrics.replayed_steps, cold_metrics.restart_count,
          0.0, 0.0],
         ["elastic resize (4 -> 2 ranks)", len(elastic_metrics.steps),
          elastic_metrics.replayed_steps, len(elastic_metrics.resizes),
          elastic_metrics.reshard_bytes / 1024,
          elastic_metrics.reshard_seconds * 1e6]],
        notes="cold restart replays every step since the last periodic "
              "checkpoint; the elastic runner checkpoints at the event "
              "step and replays nothing",
    )

    # Both strategies finish all batches.
    assert set(cold_metrics.steps) == set(range(STEPS))
    assert set(elastic_metrics.steps) == set(range(STEPS))
    # The cold restart replays EVENT_STEP - last_checkpoint steps; the
    # elastic path replays nothing but pays reshard bytes.
    assert cold_metrics.replayed_steps == \
        EVENT_STEP - (EVENT_STEP // CHECKPOINT_INTERVAL
                      * CHECKPOINT_INTERVAL)
    assert elastic_metrics.replayed_steps == 0
    assert elastic_metrics.reshard_bytes > 0
    assert len(elastic.reshard_reports) == 1


@pytest.mark.benchmark(group="elastic-resize")
def test_reshard_cost_by_layout_pair(benchmark):
    factory = make_factory()
    pairs = [(4, 2), (2, 4), (4, 1), (1, 4)]

    def measure():
        trainer = factory(layout_at(4))
        trainer.train_step(make_batches(1)[0])
        state = trainer.state_dict()
        rows = []
        for old, new in pairs:
            _, rep = reshard_state(state, layout_at(old),
                                   layout_at(new))
            rows.append([f"{old} -> {new}", rep.zero_elements_moved,
                         rep.n_experts_moved,
                         rep.total_bytes / 1024,
                         rep.seconds() * 1e6])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "Reshard cost by layout pair (demo model, exact accounting)",
        ["old -> new ranks", "zero1 elems moved", "experts moved",
         "bytes moved (KiB)", "modelled (us)"],
        rows,
        notes="ZeRO-1 shard re-flattening is interval arithmetic on "
              "the two shard grids; expert movement follows the "
              "contiguous-block EP placement",
    )
    # Shrink and grow between the same pair move the same elements.
    assert rows[0][1] == rows[1][1]
    # A deeper shrink moves at least as much as the shallow one.
    assert rows[2][1] >= rows[0][1]

    # Analytic scale-up: the 352B model's optimizer space across the
    # Table-3 DP degrees (elements whose ZeRO-1 owner changes).
    big = MODEL_ZOO["internal-352b"].total_params
    scale_rows = [
        [f"dp{a} -> dp{b}",
         zero1_moved_elements(int(big), a, b),
         zero1_moved_elements(int(big), a, b) * 3 * 8.0 / 1024 ** 3]
        for a, b in ((6, 4), (4, 6), (12, 6))
    ]
    report(
        "Analytic ZeRO-1 movement, internal-352b optimizer space",
        ["dp change", "elements moved", "GiB moved (master+m+v)"],
        scale_rows,
        notes="Table-3 DP degrees; 8-byte master copy and moments",
    )
    for _, moved, _ in scale_rows:
        assert moved > 0
