"""Ablation — EP dispatch mode (A2A vs AG/RS vs adaptive) at the
system level, extending Fig. 7.

For each Table 2 model, compares the full per-layer forward makespan
under the three dispatch configurations.  The adaptive mode must always
match the better of the two forced modes — the §3.2 design goal of
"ensuring communication overhead stays lower than tensor parallelism"
for any top-k.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig
from repro.core.operators import build_forward_graph
from repro.core.schedule import HolisticScheduler, OverlapConfig
from repro.perf.estimator import KernelModel
from repro.sim.engine import simulate

GPU = GPU_SPECS["h800"]
MODELS = ["internal-352b", "mixtral-8x7b", "mixtral-8x22b",
          "hunyuan-large", "phi-3.5-moe", "deepseekmoe"]


def layer_makespan(model, mode):
    pc = ParallelConfig.megascale(8, ep_dispatch=mode)
    graph = build_forward_graph(model, pc, 1)
    km = KernelModel(GPU)
    scheduler = HolisticScheduler(OverlapConfig.none())  # expose comm
    return simulate(scheduler.schedule(graph, km.durations(graph))) \
        .makespan


def run_ablation():
    rows = []
    for name in MODELS:
        model = MODEL_ZOO[name]
        times = {mode: layer_makespan(model, mode)
                 for mode in ("a2a", "ag_rs", "adaptive")}
        rows.append({"model": name, "top_k": model.top_k, **times})
    return rows


@pytest.mark.benchmark(group="ablation-dispatch")
def test_ablation_dispatch_modes(benchmark):
    rows = benchmark(run_ablation)
    report(
        "Ablation: EP dispatch mode, per-layer fwd makespan (ms, no "
        "overlap)",
        ["model", "top-k", "A2A", "AG/RS", "adaptive", "adaptive picks"],
        [[r["model"], r["top_k"], r["a2a"] * 1e3, r["ag_rs"] * 1e3,
          r["adaptive"] * 1e3,
          "AG/RS" if abs(r["adaptive"] - r["ag_rs"]) < 1e-12 else "A2A"]
         for r in rows],
        notes="adaptive must equal min(A2A, AG/RS) for every model",
    )

    for r in rows:
        best = min(r["a2a"], r["ag_rs"])
        assert r["adaptive"] == pytest.approx(best, rel=1e-6), r["model"]
    # Small top-k models prefer A2A; the top-6 model prefers AG/RS.
    by_model = {r["model"]: r for r in rows}
    assert by_model["mixtral-8x7b"]["a2a"] < \
        by_model["mixtral-8x7b"]["ag_rs"]
    assert by_model["deepseekmoe"]["ag_rs"] < \
        by_model["deepseekmoe"]["a2a"]
