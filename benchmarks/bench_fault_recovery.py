"""Fault-recovery overhead and detection latency.

The paper's production story (§6.4, Fig. 19) is months-long runs that
survive hardware failures through checkpoint restarts.  This bench
quantifies the miniature fault-tolerance subsystem three ways:

1. Recovery overhead vs per-collective fault rate: the same batch
   schedule is trained under increasing probabilistic comm-fault rates
   (retry-with-backoff absorbing transients, checkpoint restarts
   catching the rest); reported per rate are extra step executions
   replayed, retries, restarts, simulated backoff, and the wall-clock
   delta over the fault-free run.
2. Straggler detection latency: a 4-rank world with one 2x-slow link
   must be flagged by the z-score detector within one rolling window
   of collectives.
3. Simulated timeline impact: makespan/exposed-comm of a small
   overlap schedule under a slow comm stream and a downtime window
   (repro.sim slowdowns + StreamFailure).
"""

import time

import numpy as np
import pytest

from conftest import report
from repro.comm import World, all_reduce
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.runner import ProductionRunner
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.ft import (
    BackoffPolicy,
    FaultPlan,
    HealthMonitor,
    StragglerDetector,
)
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW
from repro.sim import SimTask, StreamFailure, simulate

CONFIG = ModelConfig("ft-bench", n_layers=1, hidden_size=16, n_heads=4,
                     gqa_ratio=2, ffn_hidden_size=24, n_experts=4,
                     top_k=2, vocab_size=32, seq_len=8)
STEPS = 24
FAULT_RATES = (0.0, 0.002, 0.01, 0.03)


def make_factory(plan):
    def factory():
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=8, learning_rate=5e-3,
                            aux_loss_coeff=0.01)
        world = World(2, 2)
        if plan is not None:
            world.attach_fault_plan(plan)
        return MegaScaleTrainer(
            model, world, ParallelConfig.megascale(2), train,
            optimizer=AdamW(model.parameters(), lr=5e-3))
    return factory


def make_batches(n):
    corpus = MarkovCorpus(vocab_size=32, seed=0)
    return list(batch_iterator(corpus, 2, 8, seed=1, limit=n))


def run_at_rate(rate, batches, tmp_dir):
    plan = FaultPlan(rate=rate, seed=5,
                     kinds=("timeout", "corrupt", "crash")) \
        if rate > 0 else None
    runner = ProductionRunner(
        make_factory(plan), tmp_dir, checkpoint_interval=6,
        max_restarts=200,
        retry_policy=BackoffPolicy(max_retries=3, base_delay=0.5))
    start = time.perf_counter()
    metrics = runner.run(batches)
    wall = time.perf_counter() - start
    assert set(metrics.steps) == set(range(len(batches)))
    return {
        "rate": rate,
        "steps": len(metrics.steps),
        "replayed": metrics.replayed_steps,
        "retries": metrics.retries,
        "restarts": metrics.restart_count,
        "backoff_s": metrics.backoff_seconds,
        "wall_s": wall,
    }


@pytest.mark.benchmark(group="fault-recovery")
def test_recovery_overhead_vs_fault_rate(benchmark, tmp_path):
    batches = make_batches(STEPS)

    def run_all():
        return [run_at_rate(r, batches, str(tmp_path / f"rate-{i}"))
                for i, r in enumerate(FAULT_RATES)]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = results[0]
    rows = [
        [r["rate"], r["steps"], r["replayed"], r["retries"],
         r["restarts"], r["backoff_s"],
         r["wall_s"] - baseline["wall_s"]]
        for r in results
    ]
    report(
        "Fault recovery overhead vs per-collective fault rate",
        ["fault rate", "step execs", "replayed", "retries", "restarts",
         "backoff (s, sim)", "wall delta (s)"],
        rows,
        notes=f"{STEPS} batches, checkpoint interval 6, retry budget 3; "
              "timeouts/corruption absorbed by retry, rank crashes "
              "restart from the last checkpoint",
    )

    # Fault-free run replays nothing and never retries.
    assert baseline["replayed"] == 0
    assert baseline["retries"] == 0 and baseline["restarts"] == 0
    # Every faulted run completed all batches (asserted in run_at_rate)
    # and overhead is monotone-ish: the highest rate did the most
    # recovery work.
    worst = results[-1]
    assert worst["retries"] + worst["restarts"] > 0
    assert worst["steps"] >= baseline["steps"]


@pytest.mark.benchmark(group="fault-recovery")
def test_straggler_detection_latency(benchmark):
    def detect():
        world = World(4, 4)
        world.attach_fault_plan(FaultPlan(slow_ranks={2: 2.0}))
        monitor = HealthMonitor(
            straggler=StragglerDetector(window=8, z_threshold=1.5))
        world.attach_health_monitor(monitor)
        group = world.full_group()
        tensors = [np.ones(64) for _ in range(4)]
        latency = None
        for call in range(1, 17):
            all_reduce(group, tensors)
            if latency is None and monitor.flagged_stragglers():
                latency = call
        return latency, monitor.flagged_stragglers()

    latency, flagged = benchmark.pedantic(detect, rounds=1,
                                          iterations=1)
    report(
        "Straggler detection latency (4 ranks, one 2x-slow link)",
        ["window", "flagged rank", "collectives to flag"],
        [[8, flagged, latency]],
        notes="z-score over per-rank windowed mean relative durations",
    )
    assert flagged == [2]
    assert latency is not None and latency <= 8  # within one window


@pytest.mark.benchmark(group="fault-recovery")
def test_sim_timeline_under_faults(benchmark):
    def tasks():
        out = []
        prev = None
        for i in range(4):
            compute = SimTask(f"mlp{i}", 2.0, "compute",
                              deps=(prev,) if prev else ())
            a2a = SimTask(f"a2a{i}", 1.5, "comm", deps=(compute.name,),
                          is_comm=True)
            out += [compute, a2a]
            prev = compute.name
        return out

    def run_all():
        clean = simulate(tasks())
        slow = simulate(tasks(), slowdowns={"comm": 2.0})
        failed = simulate(
            tasks(),
            failures=[StreamFailure("comm", at=3.0, downtime=4.0)])
        return clean, slow, failed

    clean, slow, failed = benchmark.pedantic(run_all, rounds=1,
                                             iterations=1)
    report(
        "Simulated timeline under comm faults",
        ["scenario", "makespan (s)", "exposed comm (s)"],
        [["clean", clean.makespan, clean.exposed_comm],
         ["comm stream 2x slow", slow.makespan, slow.exposed_comm],
         ["comm down 4s at t=3", failed.makespan,
          failed.exposed_comm]],
        notes="4 pipelined mlp+all-to-all pairs on compute/comm streams",
    )
    assert slow.makespan > clean.makespan
    assert failed.makespan > clean.makespan
    assert slow.exposed_comm > clean.exposed_comm
