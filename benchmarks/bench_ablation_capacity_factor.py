"""Ablation — token-drop capacity factor vs balance and loss (§3.2).

MegaScale-MoE balances per-GPU expert load with an auxiliary loss plus
token dropping.  This bench sweeps the capacity factor on a miniature
model and reports (a) the worst-case per-device load imbalance after
dropping and (b) the LM loss after a short training run — exposing the
efficiency/quality trade-off the paper navigates.
"""

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("cap-mini", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                     top_k=2, vocab_size=64, seq_len=16)
FACTORS = [0.0, 2.0, 1.25, 1.0]  # 0 disables dropping
STEPS = 10


def run_sweep():
    rows = []
    for factor in FACTORS:
        model = MoETransformer(CONFIG, seed=0, capacity_factor=factor,
                               experts_per_group=2, dtype=np.float64)
        train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                            seq_len=16, learning_rate=3e-3,
                            aux_loss_coeff=0.01, capacity_factor=factor)
        trainer = MegaScaleTrainer(
            model, World(4, 4), ParallelConfig.megascale(4), train,
            optimizer=AdamW(model.parameters(), lr=3e-3))
        corpus = MarkovCorpus(vocab_size=64, seed=1)
        losses = [trainer.train_step(b).lm_loss
                  for b in batch_iterator(corpus, 4, 16, seed=2,
                                          limit=STEPS)]
        first_loss = losses[0]

        # Worst per-expert overload after dropping, from a fresh batch.
        probe = next(batch_iterator(corpus, 8, 16, seed=3))
        fwd = model(probe[:, :-1])
        max_imbalance = 0.0
        dropped = 0
        total = 0
        for moe_out in fwd.moe_outputs:
            per_expert = moe_out.routing.tokens_per_expert(
                CONFIG.n_experts)
            mean_load = max(per_expert.mean(), 1e-9)
            max_imbalance = max(max_imbalance,
                                per_expert.max() / mean_load)
            dropped += int((~moe_out.routing.kept).sum())
            total += moe_out.routing.kept.size
        rows.append({
            "factor": factor,
            "first_loss": first_loss,
            "final_loss": losses[-1],
            "max_imbalance": max_imbalance,
            "drop_rate": dropped / total,
        })
    return rows


@pytest.mark.benchmark(group="ablation-capacity")
def test_ablation_capacity_factor(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "Ablation: token-drop capacity factor",
        ["capacity factor", "final LM loss", "max load / mean",
         "drop rate"],
        [[("off" if r["factor"] == 0 else r["factor"]),
          r["final_loss"], f"{r['max_imbalance']:.2f}",
          f"{r['drop_rate'] * 100:.1f}%"] for r in rows],
        notes="capacity bounds worst-case per-device load at the price "
              "of dropped tokens",
    )

    by_factor = {r["factor"]: r for r in rows}
    # No dropping without a capacity limit.
    assert by_factor[0.0]["drop_rate"] == 0.0
    # Tighter capacity => bounded imbalance and more drops.
    assert by_factor[1.0]["max_imbalance"] <= \
        by_factor[0.0]["max_imbalance"] + 1e-9
    assert by_factor[1.0]["drop_rate"] >= by_factor[2.0]["drop_rate"]
    # Training makes progress in every setting.
    for r in rows:
        assert r["final_loss"] < r["first_loss"]
