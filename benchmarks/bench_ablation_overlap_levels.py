"""Ablation — overlap levels: none / inter-op / inter+intra (§4).

Extends Fig. 15 by measuring the full iteration time of the 352B model
under the three overlap configurations and the resulting exposed
communication, decomposing where MegaScale-MoE's §4 machinery earns its
speedup.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.core.schedule import OverlapConfig
from repro.perf.systems import MegaScalePerfModel

GPU = GPU_SPECS["h800"]
MODEL = MODEL_ZOO["internal-352b"]
LEVELS = {
    "none": OverlapConfig.none(),
    "inter-op": OverlapConfig(inter_op=True, intra_op=False),
    "inter+intra": OverlapConfig.full(),
}


def run_ablation():
    rows = []
    train = TrainConfig(global_batch_size=720)
    pc = ParallelConfig.megascale(8, 15, 4)
    for label, overlap in LEVELS.items():
        br = MegaScalePerfModel(overlap=overlap).iteration(
            MODEL, pc, train, GPU)
        rows.append({
            "level": label,
            "iter": br.iteration_time,
            "exposed": br.exposed_comm_time,
            "mfu": br.mfu(MODEL, GPU),
        })
    return rows


@pytest.mark.benchmark(group="ablation-overlap")
def test_ablation_overlap_levels(benchmark):
    rows = benchmark(run_ablation)
    base = rows[0]["iter"]
    report(
        "Ablation: overlap levels, 352B on 480 H800",
        ["overlap", "iter (s)", "exposed comm (s)", "MFU",
         "speedup vs none"],
        [[r["level"], r["iter"], r["exposed"],
          f"{r['mfu'] * 100:.1f}%", f"{base / r['iter']:.3f}x"]
         for r in rows],
    )

    by_level = {r["level"]: r for r in rows}
    # Strict improvement at each level.
    assert by_level["inter-op"]["iter"] < by_level["none"]["iter"]
    assert by_level["inter+intra"]["iter"] <= \
        by_level["inter-op"]["iter"] * (1 + 1e-9)
    # Exposed communication shrinks monotonically.
    assert by_level["inter-op"]["exposed"] < by_level["none"]["exposed"]
    assert by_level["inter+intra"]["exposed"] <= \
        by_level["inter-op"]["exposed"] * (1 + 1e-9)
    # Full overlap hides the large majority of communication.
    assert by_level["inter+intra"]["exposed"] < \
        0.25 * by_level["none"]["exposed"]
