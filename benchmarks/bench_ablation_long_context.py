"""Ablation — sequence-length scaling of SP attention (§2.2/§3.1).

Ulysses-style SP comes from the long-context line of work; MegaScale-MoE
found it "also works well in large-scale MoE training".  This bench
sweeps the sequence length and shows why: SP's per-token communication
is constant in ``s`` while attention compute grows linearly per token
(quadratically per sequence), so the communication *fraction* of the
attention path shrinks as contexts grow — and SP's advantage over TP is
maintained at every length.
"""

import pytest

from conftest import report
from repro.core.analysis import (
    sp_attention_comm_volume,
    tp_attention_comm_volume,
)
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig
from repro.core.operators import build_forward_graph
from repro.perf.estimator import KernelModel

GPU = GPU_SPECS["h800"]
MODEL = MODEL_ZOO["mixtral-8x7b"]
SEQ_LENS = [2048, 4096, 8192, 16384, 32768]
N = 8


def run_sweep():
    km = KernelModel(GPU)
    rows = []
    for s in SEQ_LENS:
        graph = build_forward_graph(MODEL, ParallelConfig.megascale(N),
                                    1, seq_len=s)
        durations = km.durations(graph)
        attn_comm = durations["qkv_a2a"] + durations["attn_a2a"]
        attn_compute = (durations["qkv_proj"] + durations["attention"]
                        + durations["out_proj"])
        sp_elems = sp_attention_comm_volume(1, s, MODEL.hidden_size, N,
                                            MODEL.gqa_ratio)
        tp_elems = tp_attention_comm_volume(1, s, MODEL.hidden_size, N)
        rows.append({
            "seq": s,
            "comm_ms": attn_comm * 1e3,
            "compute_ms": attn_compute * 1e3,
            "comm_fraction": attn_comm / (attn_comm + attn_compute),
            "sp_per_token": sp_elems / s,
            "tp_per_token": tp_elems / s,
        })
    return rows


@pytest.mark.benchmark(group="ablation-longctx")
def test_ablation_long_context(benchmark):
    rows = benchmark(run_sweep)
    report(
        "Ablation: SP attention vs sequence length (Mixtral-8x7B, n=8)",
        ["seq len", "A2A comm (ms)", "attn compute (ms)",
         "comm fraction", "SP elems/token", "TP elems/token"],
        [[r["seq"], r["comm_ms"], r["compute_ms"],
          f"{r['comm_fraction'] * 100:.1f}%", f"{r['sp_per_token']:.0f}",
          f"{r['tp_per_token']:.0f}"] for r in rows],
        notes="per-token comm constant, per-token attention compute "
              "grows with s: communication fades as context grows",
    )

    # Per-token communication volume is independent of sequence length.
    per_token = [r["sp_per_token"] for r in rows]
    assert max(per_token) == pytest.approx(min(per_token))
    # Communication fraction of the attention path shrinks once the
    # quadratic attention term dominates the (linear) projections; at
    # short contexts both comm and projections scale linearly so the
    # fraction is flat.
    fractions = [r["comm_fraction"] for r in rows]
    tail = fractions[2:]  # from 8k up, the paper's training length
    assert all(a > b for a, b in zip(tail, tail[1:]))
    assert fractions[-1] < 0.7 * fractions[0]
    # SP stays below TP's volume at every length (Eq. 2 vs Eq. 1).
    for r in rows:
        assert r["sp_per_token"] < r["tp_per_token"]
