"""Figure 17 — loss curves with and without DP communication compression.

Paper setup: a 7B MoE model trained twice, once with FP32 reduce-scatter
gradient sync and once with the §5 compression (one BF16 cast + all-to-
all + FP32 local reduction).  Paper result: the two loss curves are
nearly identical.

Here a config-faithful miniature MoE (numpy substrate) trains on a
learnable synthetic corpus under both sync methods; we also run the
rejected ring-BF16 design as an extra ablation.
"""

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import ModelConfig
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.parallel.dp import DataParallelTrainer
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("moe-7b-mini", n_layers=2, hidden_size=32,
                     n_heads=8, gqa_ratio=2, ffn_hidden_size=48,
                     n_experts=8, top_k=2, vocab_size=64, seq_len=16)
STEPS = 12
DP = 2


def train_curve(method, seed=0):
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    world = World(DP, DP)
    trainer = DataParallelTrainer(
        model, world.full_group(),
        AdamW(model.parameters(), lr=3e-3),
        lambda m, b: m.language_model_loss(b, aux_coeff=0.01),
        sync_method=method, grad_clip=1.0)
    corpus = MarkovCorpus(vocab_size=64, seed=seed)
    batches = list(batch_iterator(corpus, 2, CONFIG.seq_len,
                                  seed=seed + 1, limit=STEPS * DP))
    losses = []
    for i in range(0, len(batches), DP):
        losses.append(trainer.train_step(batches[i:i + DP]).mean_loss)
    bytes_moved = world.ledger.total_bytes()
    return np.array(losses), bytes_moved


def run_fig17():
    curves = {}
    wire = {}
    for method in ("fp32_rs", "bf16_a2a", "bf16_ring_rs"):
        curves[method], wire[method] = train_curve(method)
    return curves, wire


@pytest.mark.benchmark(group="fig17")
def test_fig17_dp_compression(benchmark):
    curves, wire = benchmark.pedantic(run_fig17, rounds=1, iterations=1)

    rows = []
    for step in range(STEPS):
        rows.append([
            step,
            curves["fp32_rs"][step],
            curves["bf16_a2a"][step],
            curves["bf16_ring_rs"][step],
        ])
    report(
        "Fig. 17: training loss, FP32 RS vs BF16-A2A DP compression",
        ["step", "fp32_rs", "bf16_a2a (MegaScale)", "bf16_ring (rejected)"],
        rows,
        notes=f"gradient sync bytes: fp32 {wire['fp32_rs'] / 1e6:.1f} MB "
              f"vs bf16 {wire['bf16_a2a'] / 1e6:.1f} MB "
              f"({wire['bf16_a2a'] / wire['fp32_rs'] * 100:.0f}%)",
    )

    # The curves are nearly identical (paper's claim).
    rel = np.abs(curves["fp32_rs"] - curves["bf16_a2a"]) \
        / curves["fp32_rs"]
    assert rel.max() < 0.01
    # Loss actually decreases.
    assert curves["bf16_a2a"][-1] < curves["bf16_a2a"][0]
    # Wire bytes halved.
    assert wire["bf16_a2a"] == pytest.approx(wire["fp32_rs"] / 2,
                                             rel=0.01)
    # The compressed design tracks FP32 at least as well as the
    # rejected repeated-BF16-accumulation ring.
    ring_err = np.abs(curves["fp32_rs"] - curves["bf16_ring_rs"]).mean()
    a2a_err = np.abs(curves["fp32_rs"] - curves["bf16_a2a"]).mean()
    assert a2a_err <= ring_err * 1.5
