"""Explore the §4 overlap machinery on one MoE layer.

Builds the operator DAG of a Mixtral-8×7B layer (forward and backward,
with selective rematerialization), schedules it at each overlap level,
and prints a text Gantt chart of the simulated streams — making visible
exactly *where* MegaScale-MoE hides its communication.

Run:  python examples/overlap_explorer.py [model]
"""

import sys

from repro.core import (
    GPU_SPECS,
    MODEL_ZOO,
    HolisticScheduler,
    OverlapConfig,
    ParallelConfig,
    build_backward_graph,
    build_forward_graph,
)
from repro.perf import KernelModel
from repro.sim import simulate

WIDTH = 64  # characters of Gantt chart


def gantt(timeline, title):
    print(f"\n--- {title}: makespan {timeline.makespan * 1e3:.3f} ms, "
          f"exposed comm {timeline.exposed_comm * 1e3:.3f} ms ---")
    streams = sorted({r.task.stream for r in timeline.records})
    scale = WIDTH / timeline.makespan
    for stream in streams:
        records = [r for r in timeline.records
                   if r.task.stream == stream]
        line = [" "] * WIDTH
        for r in records:
            start = int(r.start * scale)
            end = max(start + 1, int(r.end * scale))
            mark = "#" if not r.task.is_comm else "~"
            for i in range(start, min(end, WIDTH)):
                line[i] = mark
        print(f"  {stream:12s} |{''.join(line)}|")
    print("  (# compute, ~ communication)")


def main(model_name="mixtral-8x7b"):
    model = MODEL_ZOO[model_name]
    gpu = GPU_SPECS["h800"]
    parallel = ParallelConfig.megascale(8, ep_dispatch="ag_rs")
    km = KernelModel(gpu)

    print(f"one {model.name} MoE layer on {gpu.name.upper()}, "
          f"strategy {parallel.strategy_name} "
          f"(dispatch: {parallel.ep_dispatch})")

    fwd = build_forward_graph(model, parallel, micro_batch=1)
    bwd = build_backward_graph(model, parallel, micro_batch=1,
                               selective_remat=True)
    durations_f = km.durations(fwd)
    durations_b = km.durations(bwd)

    print("\nforward operators (top 8 by duration):")
    for name, dur in sorted(durations_f.items(), key=lambda kv: -kv[1])[:8]:
        op = fwd[name]
        print(f"  {name:14s} {op.kind:7s} {dur * 1e6:9.1f} us")

    for label, overlap in (
        ("no overlap (Megatron-style)", OverlapConfig.none()),
        ("inter-operator overlap", OverlapConfig(inter_op=True,
                                                 intra_op=False)),
        ("inter + intra-operator overlap", OverlapConfig.full()),
    ):
        scheduler = HolisticScheduler(overlap)
        tl_f = simulate(scheduler.schedule(fwd, durations_f))
        gantt(tl_f, f"forward, {label}")

    scheduler = HolisticScheduler(OverlapConfig.full())
    tl_b = simulate(scheduler.schedule(bwd, durations_b))
    gantt(tl_b, "backward with selective rematerialization, full overlap")

    remat_time = sum(durations_b[op.name] for op in bwd
                     if op.phase == "remat")
    print(f"\nrematerialization work: {remat_time * 1e6:.1f} us "
          f"({remat_time / tl_b.makespan * 100:.1f}% of backward "
          f"makespan) — hidden under gradient communication (Fig. 8b)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mixtral-8x7b")
