"""Low-precision training walkthrough (§5 + §7 of the paper).

Trains the same miniature MoE three times — BF16, FP8 with the paper's
per-token quantization, and FP8 with naive per-tensor scales — and once
with DP gradient compression, printing the loss curves side by side and
the wire-byte savings.  This is the Fig. 17 / Fig. 18 experiment at
laptop scale.

Run:  python examples/fp8_training.py
"""

import numpy as np

from repro import (
    MarkovCorpus,
    MegaScaleTrainer,
    ModelConfig,
    MoETransformer,
    ParallelConfig,
    TrainConfig,
    World,
)
from repro.data import batch_iterator
from repro.parallel.dp import DataParallelTrainer
from repro.precision.optimizer import AdamW
from repro.precision.policy import (
    bf16_policy,
    fp8_naive_policy,
    fp8_policy,
)

CONFIG = ModelConfig("fp8-demo", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                     top_k=2, vocab_size=64, seq_len=16)
STEPS = 12


def precision_curve(policy):
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                        seq_len=16, learning_rate=3e-3,
                        aux_loss_coeff=0.01)
    trainer = MegaScaleTrainer(
        model, World(4, 4), ParallelConfig.megascale(4), train,
        optimizer=AdamW(model.parameters(), lr=3e-3), policy=policy)
    corpus = MarkovCorpus(vocab_size=64, seed=0)
    return [trainer.train_step(b).lm_loss
            for b in batch_iterator(corpus, 4, 16, seed=1, limit=STEPS)]


def dp_compression_curves():
    curves, wire = {}, {}
    for method in ("fp32_rs", "bf16_a2a"):
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        world = World(2, 2)
        trainer = DataParallelTrainer(
            model, world.full_group(), AdamW(model.parameters(),
                                             lr=3e-3),
            lambda m, b: m.language_model_loss(b, aux_coeff=0.01),
            sync_method=method, grad_clip=1.0)
        corpus = MarkovCorpus(vocab_size=64, seed=0)
        batches = list(batch_iterator(corpus, 2, 16, seed=1,
                                      limit=STEPS * 2))
        curve = []
        for i in range(0, len(batches), 2):
            curve.append(trainer.train_step(batches[i:i + 2]).mean_loss)
        curves[method] = curve
        wire[method] = world.ledger.total_bytes()
    return curves, wire


def main():
    print("== Fig. 18 miniature: GEMM-input precision ==")
    curves = {
        "bf16": precision_curve(bf16_policy()),
        "fp8 (per-token)": precision_curve(fp8_policy()),
        "fp8 (per-tensor)": precision_curve(fp8_naive_policy()),
    }
    header = "step  " + "  ".join(f"{k:>17s}" for k in curves)
    print(header)
    for step in range(STEPS):
        row = "  ".join(f"{curves[k][step]:>17.4f}" for k in curves)
        print(f"{step:4d}  {row}")
    drift = np.abs(np.array(curves["bf16"])
                   - np.array(curves["fp8 (per-token)"]))
    print(f"max |bf16 - fp8| / loss: "
          f"{(drift / np.array(curves['bf16'])).max() * 100:.2f}% "
          f"(paper: curves coincide)\n")

    print("== Fig. 17 miniature: DP gradient compression ==")
    dp_curves, wire = dp_compression_curves()
    print("step   fp32_rs   bf16_a2a")
    for step in range(STEPS):
        print(f"{step:4d}  {dp_curves['fp32_rs'][step]:8.4f}  "
              f"{dp_curves['bf16_a2a'][step]:9.4f}")
    print(f"\ngradient sync bytes: fp32 {wire['fp32_rs'] / 1e6:.1f} MB "
          f"-> bf16 {wire['bf16_a2a'] / 1e6:.1f} MB "
          f"({wire['bf16_a2a'] / wire['fp32_rs'] * 100:.0f}%, "
          f"paper: 50%)")


if __name__ == "__main__":
    main()
