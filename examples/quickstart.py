"""Quickstart: train a miniature MoE model with MegaScale-MoE's
parallelism on a simulated 4-rank node.

Demonstrates the core API surface:

* configuring a model (:class:`repro.ModelConfig`),
* choosing the SP+EP strategy (:class:`repro.ParallelConfig`),
* training with :class:`repro.MegaScaleTrainer` over simulated ranks,
* verifying the distributed run matches a single-rank reference
  bit-for-bit, and
* reading the communication ledger.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MarkovCorpus,
    MegaScaleTrainer,
    ModelConfig,
    MoETransformer,
    ParallelConfig,
    TrainConfig,
    World,
)
from repro.data import batch_iterator
from repro.precision.optimizer import AdamW, clip_grad_norm


def main():
    config = ModelConfig(
        name="quickstart-moe",
        n_layers=2,
        hidden_size=32,
        n_heads=8,
        gqa_ratio=2,        # 8 query heads share 4 KV heads (GQA)
        ffn_hidden_size=48,
        n_experts=8,
        top_k=2,
        vocab_size=64,
        seq_len=16,
    )
    print(f"model: {config.name}, {config.total_params:,} parameters "
          f"({config.activated_params:,} activated per token)")

    # A 4-rank simulated NVLink node, SP attention + EP experts.
    world = World(4, ranks_per_node=4)
    parallel = ParallelConfig.megascale(model_parallel_size=4)
    train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                        seq_len=16, learning_rate=3e-3,
                        aux_loss_coeff=0.01)

    model = MoETransformer(config, seed=0, dtype=np.float64)
    trainer = MegaScaleTrainer(
        model, world, parallel, train,
        optimizer=AdamW(model.parameters(), lr=train.learning_rate))

    corpus = MarkovCorpus(vocab_size=64, seed=0)
    print(f"corpus conditional entropy (loss floor): "
          f"{corpus.conditional_entropy():.3f} nats\n")

    print("step  loss     aux    grad-norm")
    batches = list(batch_iterator(corpus, 4, 16, seed=1, limit=10))
    for step, batch in enumerate(batches):
        result = trainer.train_step(batch)
        print(f"{step:4d}  {result.lm_loss:.4f}  "
              f"{result.aux_loss:.3f}  {result.grad_norm:.3f}")

    # The same steps on one rank produce identical losses.
    reference = MoETransformer(config, seed=0, dtype=np.float64)
    opt = AdamW(reference.parameters(), lr=train.learning_rate)
    ref_loss = None
    for batch in batches:
        reference.zero_grad()
        loss = reference.language_model_loss(batch, aux_coeff=0.01)
        loss.backward()
        clip_grad_norm(reference.parameters(), train.grad_clip)
        opt.step()
        ref_loss = loss.item()
    dist_loss = trainer.train_step(batches[-1])  # one extra probe step
    print(f"\nsingle-rank reference final loss: {ref_loss:.6f}")

    counts = world.ledger.counts()
    print("\ncommunication ledger (collective: calls):")
    for op, n in sorted(counts.items()):
        print(f"  {op:16s} {n}")
    print(f"total bytes on the simulated wire: "
          f"{world.ledger.total_bytes() / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
