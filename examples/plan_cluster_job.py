"""Plan a production training job the way §3 and §7 do.

Given a model from the Table 2 zoo and a GPU budget, this example:

1. runs the parallelism planner (SP vs TP attention, EP dispatch mode,
   PP/DP layout) and prints its §3 rationale;
2. checks the §7 scale-up ratio R — can expert compute hide dispatch
   communication on this hardware?
3. predicts iteration time, throughput, MFU, and days-to-1T-tokens with
   the calibrated performance model, against the Megatron-LM baseline;
4. prints the per-GPU memory budget with and without selective
   activation rematerialization.

Run:  python examples/plan_cluster_job.py [model] [n_gpus] [gpu]
e.g.  python examples/plan_cluster_job.py internal-352b 1440 h800
"""

import sys

from repro.core import (
    GPU_SPECS,
    MODEL_ZOO,
    ParallelConfig,
    TrainConfig,
    default_remat_plan,
    no_remat_plan,
    param_memory_per_gpu,
    plan_parallelism,
)
from repro.perf import (
    MegaScalePerfModel,
    MegatronPerfModel,
    days_for_tokens,
)

GB = 1024.0 ** 3


def main(model_name="internal-352b", n_gpus=1440, gpu_name="h800"):
    model = MODEL_ZOO[model_name]
    gpu = GPU_SPECS[gpu_name]
    print(f"planning: {model.name} ({model.total_params / 1e9:.0f}B "
          f"params) on {n_gpus} x {gpu.name.upper()}\n")

    # 1. Strategy selection.
    plan = plan_parallelism(model, n_gpus, gpu)
    print(plan.explain())
    parallel = plan.parallel

    # 2. Scale-up feasibility (§7).
    verdict = ("expert compute can hide dispatch communication"
               if plan.scale_up_ratio > 1 else
               "experts too thin: dispatch communication will be "
               "exposed — grow h_ffn or stay inside NVLink")
    print(f"\nscale-up check: R = {plan.scale_up_ratio:.2f} -> "
          f"{verdict}\n")

    # 3. Predicted training performance vs the Megatron-LM baseline.
    train = TrainConfig(global_batch_size=720)
    ms = MegaScalePerfModel().iteration(model, parallel, train, gpu)
    mg_parallel = ParallelConfig.megatron(
        parallel.model_parallel_size, parallel.pipeline_size,
        parallel.data_parallel_size)
    mg = MegatronPerfModel().iteration(model, mg_parallel, train, gpu)
    print(f"{'':22s}{'Megatron-LM':>14s}{'MegaScale-MoE':>15s}")
    print(f"{'iteration time':22s}{mg.iteration_time:>12.2f} s"
          f"{ms.iteration_time:>13.2f} s")
    print(f"{'throughput':22s}{mg.tokens_per_second / 1e3:>11.0f}k t/s"
          f"{ms.tokens_per_second / 1e3:>12.0f}k t/s")
    print(f"{'MFU':22s}{mg.mfu(model, gpu) * 100:>13.1f}%"
          f"{ms.mfu(model, gpu) * 100:>14.1f}%")
    print(f"{'days for 1T tokens':22s}"
          f"{days_for_tokens(mg.tokens_per_second):>14.1f}"
          f"{days_for_tokens(ms.tokens_per_second):>15.1f}")
    print(f"\nspeedup: {mg.iteration_time / ms.iteration_time:.2f}x "
          f"(paper band: 1.65-1.88x)\n")

    # 4. Memory budget.
    static = param_memory_per_gpu(model, parallel)
    layers_per_stage = model.n_layers / parallel.pipeline_size
    in_flight = parallel.pipeline_size
    for label, remat_plan in (("with SAR", default_remat_plan()),
                              ("no SAR", no_remat_plan())):
        act = remat_plan.retained_elements(model, parallel, 1) * 2.0 \
            * layers_per_stage * in_flight
        total = static["total"] + act
        flag = "OK" if total < gpu.memory_bytes else "OOM!"
        print(f"memory/GPU {label:9s}: params+opt "
              f"{static['total'] / GB:5.1f} GB + activations "
              f"{act / GB:5.1f} GB = {total / GB:5.1f} GB "
              f"(HBM {gpu.memory_bytes / GB:.0f} GB) {flag}")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        args[0] if len(args) > 0 else "internal-352b",
        int(args[1]) if len(args) > 1 else 1440,
        args[2] if len(args) > 2 else "h800",
    )
