"""Operate a long training run the way §7 describes: checkpoints,
failures, restarts, and a stable loss trajectory (Fig. 19).

This example drives a miniature MegaScale trainer through 48 steps with
periodic checkpoints while a fault injector kills the "job" three times.
The ProductionRunner resumes from the latest durable checkpoint each
time; the printed trajectory shows the replayed steps and that the loss
keeps converging toward the corpus's entropy floor.

Run:  python examples/production_run.py
"""

import os
import tempfile

import numpy as np

from repro import (
    MarkovCorpus,
    MegaScaleTrainer,
    ModelConfig,
    MoETransformer,
    ParallelConfig,
    TrainConfig,
    World,
)
from repro.core.runner import FaultInjector, ProductionRunner
from repro.data import batch_iterator
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("prod-demo", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                     top_k=2, vocab_size=32, seq_len=16)
STEPS = 48
FAULT_STEPS = (13, 27, 41)
CHECKPOINT_INTERVAL = 8


def trainer_factory():
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    train = TrainConfig(global_batch_size=8, micro_batch_size=8,
                        seq_len=16, learning_rate=5e-3,
                        aux_loss_coeff=0.01)
    return MegaScaleTrainer(
        model, World(4, 4), ParallelConfig.megascale(4), train,
        optimizer=AdamW(model.parameters(), lr=5e-3))


def main():
    corpus = MarkovCorpus(vocab_size=32, branching=3, temperature=0.1,
                          seed=3)
    batches = list(batch_iterator(corpus, 8, 16, seed=4, limit=STEPS))
    print(f"corpus entropy floor: {corpus.conditional_entropy():.3f} "
          f"nats; faults injected at steps {FAULT_STEPS}; "
          f"checkpoint every {CHECKPOINT_INTERVAL} steps\n")

    with tempfile.TemporaryDirectory() as ckpt_dir:
        runner = ProductionRunner(trainer_factory, ckpt_dir,
                                  checkpoint_interval=CHECKPOINT_INTERVAL)
        injector = FaultInjector(FAULT_STEPS)
        metrics = runner.run(batches, injector)

        print("step  loss    (replays shown where the run restarted)")
        seen = set()
        for step, loss in zip(metrics.steps, metrics.losses):
            replay = " (replay)" if step in seen else ""
            seen.add(step)
            if step % 4 == 0 or replay:
                print(f"{step:4d}  {loss:.4f}{replay}")

        print(f"\nrestarts: {metrics.restart_count} "
              f"(at steps {metrics.restarts})")
        print(f"checkpoints written: {metrics.checkpoints}")
        first = np.mean(metrics.losses[:6])
        last = np.mean(metrics.losses[-6:])
        print(f"loss: {first:.3f} -> {last:.3f} "
              f"({(1 - last / first) * 100:.0f}% down, floor "
              f"{corpus.conditional_entropy():.3f})")

        csv_path = os.path.join(ckpt_dir, "metrics.csv")
        metrics.to_csv(csv_path)
        with open(csv_path) as handle:
            rows = len(handle.readlines()) - 1
        print(f"metrics.csv: {rows} rows")


if __name__ == "__main__":
    main()
