from setuptools import setup, find_packages

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of MegaScale-MoE: communication-efficient "
        "large-scale MoE training (EuroSys 2026)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
