"""Tests for fault modelling in the execution simulator
(repro.sim.engine: per-stream slowdowns + StreamFailure windows)."""

import pytest

from repro.sim import SimTask, StreamFailure, simulate


def two_stream_tasks():
    return [
        SimTask("c0", 2.0, "compute"),
        SimTask("a2a", 3.0, "comm", deps=("c0",), is_comm=True),
        SimTask("c1", 2.0, "compute", deps=("c0",)),
        SimTask("c2", 2.0, "compute", deps=("a2a", "c1")),
    ]


class TestSlowdowns:
    def test_default_behavior_unchanged(self):
        timeline = simulate(two_stream_tasks())
        assert timeline.makespan == 7.0

    def test_slow_stream_scales_its_durations(self):
        timeline = simulate(two_stream_tasks(),
                            slowdowns={"comm": 2.0})
        # a2a stretches 3 -> 6: starts at 2, ends at 8; c2 ends at 10.
        record = timeline.record_of("a2a")
        assert (record.start, record.end) == (2.0, 8.0)
        assert timeline.makespan == 10.0

    def test_other_streams_unaffected(self):
        timeline = simulate(two_stream_tasks(),
                            slowdowns={"comm": 2.0})
        assert timeline.record_of("c1").end == 4.0

    def test_slowdown_increases_exposed_comm(self):
        clean = simulate(two_stream_tasks())
        slow = simulate(two_stream_tasks(), slowdowns={"comm": 3.0})
        assert slow.exposed_comm > clean.exposed_comm

    def test_slowdown_validation(self):
        with pytest.raises(ValueError, match="slowdown"):
            simulate(two_stream_tasks(), slowdowns={"comm": 0.5})


class TestStreamFailures:
    def test_start_inside_window_is_pushed_out(self):
        # a2a would start at t=2, inside the [1, 6) downtime window.
        timeline = simulate(
            two_stream_tasks(),
            failures=[StreamFailure("comm", at=1.0, downtime=5.0)])
        record = timeline.record_of("a2a")
        assert (record.start, record.end) == (6.0, 9.0)

    def test_running_task_pauses_for_downtime(self):
        # a2a runs [2, 5); a window opening at t=4 pauses it for 1s.
        timeline = simulate(
            two_stream_tasks(),
            failures=[StreamFailure("comm", at=4.0, downtime=1.0)])
        assert timeline.record_of("a2a").end == 6.0

    def test_window_after_task_has_no_effect(self):
        timeline = simulate(
            two_stream_tasks(),
            failures=[StreamFailure("comm", at=50.0, downtime=10.0)])
        assert timeline.makespan == 7.0

    def test_failure_only_affects_its_stream(self):
        timeline = simulate(
            two_stream_tasks(),
            failures=[StreamFailure("comm", at=1.0, downtime=5.0)])
        assert timeline.record_of("c1").end == 4.0

    def test_downstream_tasks_slip_transitively(self):
        timeline = simulate(
            two_stream_tasks(),
            failures=[StreamFailure("comm", at=1.0, downtime=5.0)])
        # c2 waits on the delayed a2a.
        assert timeline.record_of("c2").start == 9.0
        assert timeline.makespan == 11.0

    def test_multiple_windows_compound(self):
        tasks = [SimTask("t", 1.0, "s")]
        timeline = simulate(
            tasks,
            failures=[StreamFailure("s", at=0.0, downtime=2.0),
                      StreamFailure("s", at=2.5, downtime=1.0)])
        # Pushed to 2.0, then paused at 2.5 for 1s: ends at 4.0.
        assert timeline.record_of("t").end == 4.0

    def test_validation(self):
        with pytest.raises(ValueError, match="failure time"):
            StreamFailure("s", at=-1.0, downtime=1.0)
        with pytest.raises(ValueError, match="downtime"):
            StreamFailure("s", at=0.0, downtime=-1.0)
