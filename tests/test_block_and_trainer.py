"""End-to-end equivalence: block engine combos and MegaScaleTrainer."""

import numpy as np
import pytest

from repro.baselines import MegatronTrainer
from repro.comm import World
from repro.core import MegaScaleTrainer, ParallelConfig, \
    TrainConfig
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.model.transformer import TransformerBlock
from repro.parallel import ParallelBlockEngine, shard_sequence, \
    unshard_sequence
from repro.precision.optimizer import AdamW, clip_grad_norm
from repro.tensor import Tensor


@pytest.fixture
def block_setup(rng, tiny_config):
    block = TransformerBlock(np.random.default_rng(0), tiny_config,
                             dtype=np.float64)
    x = rng.standard_normal((2, 8, tiny_config.hidden_size))
    xt = Tensor(x, requires_grad=True)
    hidden, moe_out = block(xt)
    return block, x, hidden.data.copy(), moe_out.aux_loss.item()


class TestParallelBlockEngine:
    @pytest.mark.parametrize("attn,ffn", [
        ("sp", "ep"), ("sp", "tp"), ("tp", "ep"), ("tp", "tp"),
    ])
    def test_all_strategy_combos_match(self, block_setup, attn, ffn):
        block, x, ref_hidden, ref_aux = block_setup
        block.zero_grad()
        world = World(4, 4)
        engine = ParallelBlockEngine(world.full_group(), block, attn, ffn)
        shards = shard_sequence(x, 4)
        outs, aux = engine.forward(shards, 8)
        np.testing.assert_allclose(unshard_sequence(outs), ref_hidden,
                                   atol=1e-9)
        assert aux.item() == pytest.approx(ref_aux, abs=1e-10)

    def test_invalid_strategies(self, block_setup):
        block = block_setup[0]
        world = World(4, 4)
        with pytest.raises(ValueError, match="attention strategy"):
            ParallelBlockEngine(world.full_group(), block, "cp", "ep")
        with pytest.raises(ValueError, match="ffn strategy"):
            ParallelBlockEngine(world.full_group(), block, "sp", "zero")

    def test_shard_helpers(self, rng):
        x = rng.standard_normal((2, 8, 4))
        shards = shard_sequence(x, 4)
        assert len(shards) == 4 and shards[0].shape == (2, 2, 4)
        np.testing.assert_array_equal(unshard_sequence(shards), x)
        with pytest.raises(ValueError, match="divisible"):
            shard_sequence(x, 3)


def train_reference(config, batches, lr=1e-2, aux=0.01):
    model = MoETransformer(config, seed=0, dtype=np.float64)
    opt = AdamW(model.parameters(), lr=lr)
    losses = []
    for batch in batches:
        model.zero_grad()
        loss = model.language_model_loss(batch, aux_coeff=aux)
        loss.backward()
        clip_grad_norm(model.parameters(), 1.0)
        opt.step()
        losses.append(loss.item())
    return model, losses


class TestMegaScaleTrainer:
    def make(self, config, n, **kwargs):
        model = MoETransformer(config, seed=0, dtype=np.float64)
        world = World(n, n)
        tr = TrainConfig(global_batch_size=4, micro_batch_size=4,
                         seq_len=config.seq_len, learning_rate=1e-2,
                         aux_loss_coeff=0.01)
        trainer = MegaScaleTrainer(
            model, world, ParallelConfig.megascale(n), tr,
            optimizer=AdamW(model.parameters(), lr=1e-2), **kwargs)
        return trainer

    def test_losses_match_reference_exactly(self, tiny_config):
        corpus = MarkovCorpus(vocab_size=64, seed=0)
        batches = list(batch_iterator(corpus, 4, 16, limit=4))
        _, ref_losses = train_reference(tiny_config, batches)
        trainer = self.make(tiny_config, 4)
        dist_losses = [trainer.train_step(b).loss for b in batches]
        np.testing.assert_allclose(dist_losses, ref_losses, atol=1e-9)

    def test_megatron_trainer_matches_too(self, tiny_config):
        corpus = MarkovCorpus(vocab_size=64, seed=0)
        batches = list(batch_iterator(corpus, 4, 16, limit=3))
        _, ref_losses = train_reference(tiny_config, batches)
        model = MoETransformer(tiny_config, seed=0, dtype=np.float64)
        world = World(4, 4)
        tr = TrainConfig(global_batch_size=4, micro_batch_size=4,
                         seq_len=16, learning_rate=1e-2,
                         aux_loss_coeff=0.01)
        trainer = MegatronTrainer(
            model, world, tr, optimizer=AdamW(model.parameters(),
                                              lr=1e-2))
        losses = [trainer.train_step(b).loss for b in batches]
        np.testing.assert_allclose(losses, ref_losses, atol=1e-9)

    def test_world_size_mismatch(self, tiny_config):
        model = MoETransformer(tiny_config, seed=0)
        with pytest.raises(ValueError, match="world size"):
            MegaScaleTrainer(model, World(4, 4),
                             ParallelConfig.megascale(8),
                             TrainConfig())

    def test_sequence_divisibility(self, tiny_config):
        trainer = self.make(tiny_config, 4)
        with pytest.raises(ValueError, match="divisible"):
            trainer.train_step(np.zeros((1, 11), dtype=int))

    def test_eval_loss_no_mutation(self, tiny_config, rng):
        trainer = self.make(tiny_config, 4)
        ids = rng.integers(0, 64, (2, 17))
        before = {k: v.copy() for k, v in trainer.state_dict().items()}
        trainer.eval_loss(ids)
        after = trainer.state_dict()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_checkpoint_roundtrip(self, tiny_config, rng):
        trainer = self.make(tiny_config, 4)
        ids = rng.integers(0, 64, (2, 17))
        trainer.train_step(ids)
        state = trainer.state_dict()
        fresh = self.make(tiny_config, 4)
        fresh.load_state_dict(state)
        assert fresh.eval_loss(ids) == pytest.approx(
            trainer.eval_loss(ids))

    def test_step_result_telemetry(self, tiny_config, rng):
        trainer = self.make(tiny_config, 4)
        ids = rng.integers(0, 64, (2, 17))
        result = trainer.train_step(ids)
        assert result.tokens == 2 * 16
        assert result.grad_norm > 0
        assert result.loss == pytest.approx(
            result.lm_loss + 0.01 * result.aux_loss)

    def test_training_reduces_loss(self, tiny_config):
        corpus = MarkovCorpus(vocab_size=64, seed=1)
        trainer = self.make(tiny_config, 4)
        batches = list(batch_iterator(corpus, 4, 16, limit=10))
        first = trainer.eval_loss(batches[0])
        for batch in batches:
            trainer.train_step(batch)
        assert trainer.eval_loss(batches[0]) < first
