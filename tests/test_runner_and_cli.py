"""Tests for the production runner (faults/recovery) and the CLI."""

import os

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.runner import (
    FaultInjector,
    ProductionRunner,
    SimulatedFault,
)
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("runner", n_layers=1, hidden_size=16, n_heads=4,
                     gqa_ratio=2, ffn_hidden_size=24, n_experts=4,
                     top_k=2, vocab_size=32, seq_len=8)


def trainer_factory():
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=8, learning_rate=5e-3,
                        aux_loss_coeff=0.01)
    return MegaScaleTrainer(
        model, World(2, 2), ParallelConfig.megascale(2), train,
        optimizer=AdamW(model.parameters(), lr=5e-3))


def make_batches(n):
    corpus = MarkovCorpus(vocab_size=32, seed=0)
    return list(batch_iterator(corpus, 2, 8, seed=1, limit=n))


class TestFaultInjector:
    def test_fires_once_per_step(self):
        inj = FaultInjector([3])
        inj.check(2)
        with pytest.raises(SimulatedFault):
            inj.check(3)
        inj.check(3)  # second pass over the same step: no fault
        assert inj.fired == [3]


class TestProductionRunner:
    def test_clean_run(self, tmp_path):
        runner = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=4)
        metrics = runner.run(make_batches(10))
        assert metrics.steps == list(range(10))
        assert metrics.restart_count == 0
        assert runner.latest_checkpoint() == 10

    def test_checkpoint_cadence(self, tmp_path):
        """The final save is skipped when the last step already
        checkpointed — no duplicate file or metrics entry."""
        runner = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=3)
        metrics = runner.run(make_batches(9))
        assert metrics.checkpoints == [3, 6, 9]
        assert runner.checkpoint_steps() == [3, 6, 9]

    def test_recovers_from_faults(self, tmp_path):
        runner = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=3)
        injector = FaultInjector([4, 8])
        metrics = runner.run(make_batches(10), injector)
        assert metrics.restart_count == 2
        assert injector.fired == [4, 8]
        # Every batch eventually trained.
        assert set(metrics.steps) == set(range(10))

    def test_recovered_run_matches_clean_run(self, tmp_path):
        """Determinism across restarts: the final loss for each step is
        identical with and without mid-run faults."""
        clean = ProductionRunner(trainer_factory,
                                 str(tmp_path / "clean"),
                                 checkpoint_interval=3)
        clean_metrics = clean.run(make_batches(9))

        faulty = ProductionRunner(trainer_factory,
                                  str(tmp_path / "faulty"),
                                  checkpoint_interval=3)
        faulty_metrics = faulty.run(make_batches(9),
                                    FaultInjector([4, 7]))
        final = {}
        for step, loss in zip(faulty_metrics.steps,
                              faulty_metrics.losses):
            final[step] = loss  # replayed steps overwrite
        for step, loss in zip(clean_metrics.steps, clean_metrics.losses):
            assert final[step] == pytest.approx(loss, abs=1e-12), step

    def test_resume_from_existing_checkpoints(self, tmp_path):
        batches = make_batches(8)
        first = ProductionRunner(trainer_factory, str(tmp_path),
                                 checkpoint_interval=4)
        first.run(batches[:4])
        assert first.latest_checkpoint() == 4
        second = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=4)
        metrics = second.run(batches)
        # Only the untrained tail is executed.
        assert metrics.steps == [4, 5, 6, 7]

    def test_max_restarts_enforced(self, tmp_path):
        runner = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=100,
                                  max_restarts=1)
        # Fault at step 0 fires on the first attempt and, because no
        # checkpoint exists, the retry starts at 0 again — but the
        # injector only fires once per scheduled step, so schedule two.
        with pytest.raises(SimulatedFault):
            runner.run(make_batches(3), FaultInjector([0, 1]))

    def test_metrics_csv(self, tmp_path):
        runner = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=5)
        metrics = runner.run(make_batches(4))
        path = os.path.join(str(tmp_path), "metrics.csv")
        metrics.to_csv(path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0] == "step,loss"
        assert len(lines) == 5

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ProductionRunner(trainer_factory, str(tmp_path),
                             checkpoint_interval=0)

    def test_leftover_tmp_file_ignored_and_swept(self, tmp_path):
        """A .npz.tmp left by a crash mid-write is never treated as a
        checkpoint and is cleaned up by the next successful save."""
        batches = make_batches(8)
        first = ProductionRunner(trainer_factory, str(tmp_path),
                                 checkpoint_interval=4)
        first.run(batches[:4])
        stale = os.path.join(str(tmp_path), "step_00000006.npz.tmp")
        with open(stale, "wb") as handle:
            handle.write(b"partial write from a crashed process")
        second = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=4)
        assert second.latest_checkpoint() == 4
        assert second.checkpoint_steps() == [4]
        second.run(batches)
        assert not os.path.exists(stale)
        assert second.checkpoint_steps() == [4, 8]

    def test_corrupt_latest_checkpoint_skipped_on_resume(self,
                                                         tmp_path):
        """Resume falls back past an unreadable newest checkpoint."""
        batches = make_batches(8)
        first = ProductionRunner(trainer_factory, str(tmp_path),
                                 checkpoint_interval=4)
        first.run(batches)
        with open(first._path(8), "r+b") as handle:
            handle.truncate(12)
        second = ProductionRunner(trainer_factory, str(tmp_path),
                                  checkpoint_interval=4)
        metrics = second.run(batches)
        assert second.discarded == [8]
        assert metrics.steps == [4, 5, 6, 7]
        assert metrics.invalid_checkpoints == [8]


class TestCLI:
    def test_models(self, capsys):
        assert cli_main(["models"]) == 0
        out = capsys.readouterr().out
        assert "internal-352b" in out and "mixtral-8x7b" in out

    def test_gpus(self, capsys):
        assert cli_main(["gpus"]) == 0
        assert "h800" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert cli_main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "1440" in out and "speedup" in out

    def test_plan(self, capsys):
        assert cli_main(["plan", "mixtral-8x7b", "32", "h800",
                         "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "SP+EP" in out and "scale-up ratio" in out

    def test_train_demo(self, capsys):
        assert cli_main(["train-demo", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4

    def test_ft_demo(self, capsys, tmp_path):
        assert cli_main(["ft-demo", "16", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "comm faults injected" in out
        assert "timeout" in out and "corrupt" in out
        assert "stragglers flagged   : [1]" in out
        assert "rollbacks" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
