"""Tests for the vocab-parallel LM head and cross-entropy."""

import numpy as np
import pytest

from repro.comm import World
from repro.parallel.vocab_parallel import (
    shard_lm_head,
    vocab_parallel_cross_entropy,
    vocab_parallel_loss,
)
from repro.tensor import Tensor, ops


class TestShardLMHead:
    def test_shapes(self, rng):
        shards = shard_lm_head(rng.standard_normal((8, 32)), 4)
        assert len(shards) == 4
        assert all(s.shape == (8, 8) for s in shards)

    def test_divisibility(self, rng):
        with pytest.raises(ValueError, match="not divisible"):
            shard_lm_head(rng.standard_normal((8, 30)), 4)

    def test_columns_cover_weight(self, rng):
        w = rng.standard_normal((8, 16))
        shards = shard_lm_head(w, 4)
        np.testing.assert_array_equal(
            np.concatenate([s.data for s in shards], axis=1), w)


class TestVocabParallelCrossEntropy:
    def reference(self, logits, targets):
        lt = Tensor(logits, requires_grad=True)
        loss = ops.cross_entropy(lt, targets)
        loss.backward()
        return loss.item(), lt.grad.copy()

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_matches_dense_cross_entropy(self, rng, n):
        t, vocab = 12, 32
        logits = rng.standard_normal((t, vocab))
        targets = rng.integers(0, vocab, t)
        ref_loss, ref_grad = self.reference(logits, targets)

        world = World(n, n)
        width = vocab // n
        shards = [Tensor(logits[:, r * width:(r + 1) * width].copy(),
                         requires_grad=True) for r in range(n)]
        loss = vocab_parallel_cross_entropy(world.full_group(), shards,
                                            targets)
        assert loss.item() == pytest.approx(ref_loss, abs=1e-10)
        loss.backward()
        grad = np.concatenate([s.grad for s in shards], axis=1)
        np.testing.assert_allclose(grad, ref_grad, atol=1e-10)

    def test_stable_with_large_logits(self, rng):
        """The detached global max keeps exp() in range even when one
        shard holds huge values."""
        t, vocab, n = 6, 16, 4
        logits = rng.standard_normal((t, vocab))
        logits[:, 5] += 1e4  # shard 1 owns the max
        targets = rng.integers(0, vocab, t)
        world = World(n, n)
        shards = [Tensor(logits[:, r * 4:(r + 1) * 4].copy())
                  for r in range(n)]
        loss = vocab_parallel_cross_entropy(world.full_group(), shards,
                                            targets)
        assert np.isfinite(loss.item())

    def test_target_ownership_any_rank(self, rng):
        """Targets living on each different rank are all recovered."""
        t, vocab, n = 8, 16, 4
        logits = rng.standard_normal((t, vocab))
        # One target per shard region, cycled.
        targets = np.array([1, 5, 9, 13, 2, 6, 10, 14])
        ref_loss, _ = self.reference(logits, targets)
        world = World(n, n)
        shards = [Tensor(logits[:, r * 4:(r + 1) * 4].copy())
                  for r in range(n)]
        loss = vocab_parallel_cross_entropy(world.full_group(), shards,
                                            targets)
        assert loss.item() == pytest.approx(ref_loss, abs=1e-10)

    def test_validation(self, rng):
        world = World(2, 2)
        shards = [Tensor(rng.standard_normal((4, 8))) for _ in range(2)]
        with pytest.raises(ValueError, match="targets cover"):
            vocab_parallel_cross_entropy(world.full_group(), shards,
                                         np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="outside"):
            vocab_parallel_cross_entropy(world.full_group(), shards,
                                         np.full(4, 99))

    def test_never_materializes_full_logits(self, rng):
        """Each shard stays [T, V/n]; the reduction tensors are [T, 1]."""
        t, vocab, n = 10, 64, 4
        logits = rng.standard_normal((t, vocab))
        targets = rng.integers(0, vocab, t)
        world = World(n, n)
        shards = [Tensor(logits[:, r * 16:(r + 1) * 16].copy(),
                         requires_grad=True) for r in range(n)]
        loss = vocab_parallel_cross_entropy(world.full_group(), shards,
                                            targets)
        from repro.tensor.checkpoint import tape_saved_arrays
        widths = {a.shape[-1] for a in tape_saved_arrays(loss)
                  if a.ndim >= 2}
        assert vocab not in widths  # no [T, V] array on the tape


class TestVocabParallelLoss:
    def test_end_to_end_matches_reference(self, rng):
        b, s, h, vocab, n = 2, 8, 16, 32, 4
        hidden = rng.standard_normal((b, s, h))
        head = rng.standard_normal((h, vocab)) * 0.1
        targets = rng.integers(0, vocab, b * s)

        ht = Tensor(hidden, requires_grad=True)
        wt = Tensor(head, requires_grad=True)
        logits = ht.reshape(b * s, h) @ wt
        ref = ops.cross_entropy(logits, targets)
        ref.backward()
        ref_grad_w = wt.grad.copy()

        world = World(n, n)
        hidden_shards = [Tensor(hidden[:, r * 2:(r + 1) * 2].copy(),
                                requires_grad=True) for r in range(n)]
        head_shards = shard_lm_head(head, n)
        # Targets follow the gathered (rank-major) token order.
        gathered_targets = targets.reshape(b, s)
        reordered = np.concatenate(
            [gathered_targets[:, r * 2:(r + 1) * 2].reshape(-1)
             for r in range(n)])
        loss = vocab_parallel_loss(world.full_group(), hidden_shards,
                                   head_shards, reordered)
        assert loss.item() == pytest.approx(ref.item(), abs=1e-10)
        loss.backward()
        grad_w = np.concatenate([s.grad for s in head_shards], axis=1)
        np.testing.assert_allclose(grad_w, ref_grad_w, atol=1e-10)


class TestTrainerIntegration:
    def test_trainer_bitwise_identical_with_vocab_parallel(self):
        from repro.comm import World
        from repro.core.config import ModelConfig, ParallelConfig, \
            TrainConfig
        from repro.core.trainer import MegaScaleTrainer
        from repro.data import MarkovCorpus, batch_iterator
        from repro.model import MoETransformer
        from repro.precision.optimizer import AdamW

        cfg = ModelConfig("vp", 2, 32, 8, 2, 48, 8, 2, vocab_size=64,
                          seq_len=16)
        corpus = MarkovCorpus(vocab_size=64, seed=0)
        batches = list(batch_iterator(corpus, 4, 16, seed=1, limit=3))
        tr = TrainConfig(global_batch_size=4, micro_batch_size=4,
                         seq_len=16, learning_rate=1e-2,
                         aux_loss_coeff=0.01)
        losses = {}
        states = {}
        for vp in (False, True):
            model = MoETransformer(cfg, seed=0, dtype=np.float64)
            trainer = MegaScaleTrainer(
                model, World(4, 4), ParallelConfig.megascale(4), tr,
                optimizer=AdamW(model.parameters(), lr=1e-2),
                vocab_parallel=vp)
            losses[vp] = [trainer.train_step(b).loss for b in batches]
            states[vp] = model.state_dict()
        np.testing.assert_allclose(losses[True], losses[False],
                                   atol=1e-12)
        for name in states[False]:
            np.testing.assert_allclose(states[True][name],
                                       states[False][name], atol=1e-12,
                                       err_msg=name)
