"""Chrome-trace export and Eq. 1–4 comm-volume audit tests."""

import json

import numpy as np
import pytest

from repro.comm import World
from repro.core.analysis import (
    sp_attention_comm_volume,
    tp_attention_comm_volume,
)
from repro.model.layers import SelfAttention
from repro.model.moe import MoELayer
from repro.obs import (
    Tracer,
    audit_comm_volumes,
    crosscheck_tracer_ledger,
    text_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.parallel.ep_ffn import EPFFNEngine
from repro.parallel.sp_attention import SPAttentionEngine
from repro.parallel.tp_attention import TPAttentionEngine
from repro.tensor import Tensor

B, S, H, FH, E, K, N, M = 2, 16, 32, 48, 8, 2, 4, 2


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


def shard(x, n):
    s = x.shape[1]
    return [Tensor(x[:, r * s // n:(r + 1) * s // n].copy())
            for r in range(n)]


def run_engine(kind, tracer=None, mode="ag_rs"):
    """One forward pass of a parallel engine on a fresh world."""
    rng = np.random.default_rng(0)
    world = World(N, N)
    if tracer is not None:
        world.attach_tracer(tracer)
    x = rng.standard_normal((B, S, H))
    if kind in ("sp_attn", "tp_attn"):
        attn = SelfAttention(rng, H, 8, M, dtype=np.float64)
        cls = SPAttentionEngine if kind == "sp_attn" else TPAttentionEngine
        engine = cls(world.full_group(), attn)
        engine.forward(shard(x, N), S)
    else:
        moe = MoELayer(rng, H, FH, E, K, dtype=np.float64)
        engine = EPFFNEngine(world.full_group(), moe, mode=mode)
        engine.forward(shard(x, N))
    return world


class TestChromeExport:
    def test_complete_event_mapping(self):
        t = Tracer(clock=FakeClock())
        with t.span("fwd", cat="train", stream="main", pid="train",
                    phase="forward", step=3):
            pass
        trace = to_chrome_trace(t.spans, t.events)
        (ev,) = trace["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["name"] == "fwd" and ev["cat"] == "train"
        assert ev["pid"] == "train" and ev["tid"] == "main"
        assert ev["ts"] == pytest.approx(0.5e6)  # seconds -> us
        assert ev["dur"] == pytest.approx(0.5e6)
        assert ev["args"]["step"] == 3
        assert ev["args"]["phase"] == "forward"

    def test_open_spans_skipped(self):
        t = Tracer(clock=FakeClock())
        t.begin("never-closed")
        assert to_chrome_trace(t.spans)["traceEvents"] == []

    def test_instant_events(self):
        t = Tracer(clock=FakeClock())
        t.instant("checkpoint", cat="runner", step=8)
        (ev,) = to_chrome_trace([], t.events)["traceEvents"]
        assert ev["ph"] == "i" and ev["s"] == "p"
        assert ev["args"]["step"] == 8

    def test_non_json_attrs_coerced(self):
        t = Tracer(clock=FakeClock())
        with t.span("x", arr=np.zeros(2), deps=("a", "b")):
            pass
        trace = to_chrome_trace(t.spans)
        args = trace["traceEvents"][0]["args"]
        assert isinstance(args["arr"], str)
        assert args["deps"] == ["a", "b"]
        json.dumps(trace)  # round-trips

    def test_write_and_reload(self, tmp_path):
        t = Tracer(clock=FakeClock())
        with t.span("step"):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), t, extra_metadata={"pr": 2})
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["pr"] == 2
        assert loaded["otherData"]["tool"] == "repro.obs"
        assert len(loaded["traceEvents"]) == 1

    def test_text_summary(self):
        tracer = Tracer(clock=FakeClock())
        run_engine("sp_attn", tracer=tracer)
        text = text_summary(tracer)
        assert "comm" in text
        assert "train/comm/intra" in text

    def test_text_summary_empty(self):
        assert "no closed spans" in text_summary(Tracer())


class TestAudit:
    def test_sp_attention_exact(self):
        world = run_engine("sp_attn")
        report = audit_comm_volumes(world.ledger, b=B, s=S, h=H, n=N,
                                    m=M, k=K)
        entry = report.entry("sp_attention")
        assert report.ok
        assert entry.rel_error < 1e-9
        assert entry.expected_bytes == pytest.approx(
            sp_attention_comm_volume(B, S, H, N, M) * N / 2 * 8.0)

    def test_tp_attention_exact(self):
        world = run_engine("tp_attn")
        report = audit_comm_volumes(world.ledger, b=B, s=S, h=H, n=N,
                                    m=M, k=K)
        entry = report.entry("tp_attention")
        assert report.ok
        assert entry.rel_error < 1e-9
        assert entry.expected_bytes == pytest.approx(
            tp_attention_comm_volume(B, S, H, N) * N * 8.0)

    def test_ep_ag_rs_exact(self):
        world = run_engine("ep_ffn", mode="ag_rs")
        report = audit_comm_volumes(world.ledger, b=B, s=S, h=H, n=N,
                                    m=M, k=K)
        assert report.ok
        assert report.entry("ep_ffn_ag_rs").rel_error < 1e-9

    def test_ep_a2a_within_expectation_and_bound(self):
        world = run_engine("ep_ffn", mode="a2a")
        report = audit_comm_volumes(world.ledger, b=B, s=S, h=H, n=N,
                                    m=M, k=K)
        entry = report.entry("ep_ffn_a2a")
        assert not entry.exact
        assert entry.within_bound
        assert entry.ok  # routed volume within the 30% expectation band

    def test_tampered_ledger_detected(self):
        world = run_engine("sp_attn")
        # The auditor reads the rotation-proof cumulative counters, so
        # that is where a byte-accounting bug would surface.
        for agg in world.ledger.cumulative.values():
            agg["total_bytes"] *= 1.5
        report = audit_comm_volumes(world.ledger, b=B, s=S, h=H, n=N,
                                    m=M, k=K)
        assert not report.ok
        assert [e.mechanism for e in report.failed()] == ["sp_attention"]

    def test_audit_exact_across_ledger_rotation(self):
        """The auditor reads the never-rotated cumulative counters, so
        a bounded ledger that rotates records mid-window must audit
        byte-identically to an unbounded one."""
        passes = 3

        def run(max_records):
            world = World(N, N, max_ledger_records=max_records)
            attn = SelfAttention(np.random.default_rng(0), H, 8, M,
                                 dtype=np.float64)
            engine = SPAttentionEngine(world.full_group(), attn)
            x = np.random.default_rng(1).standard_normal((B, S, H))
            for _ in range(passes):
                engine.forward(shard(x, N), S)
            return world

        bounded, unbounded = run(2), run(None)
        assert bounded.ledger.dropped > 0  # rotation actually happened
        kwargs = dict(b=B, s=S, h=H, n=N, m=M, k=K, passes=passes)
        rb = audit_comm_volumes(bounded.ledger, **kwargs)
        ru = audit_comm_volumes(unbounded.ledger, **kwargs)
        assert rb.ok and ru.ok
        assert rb.entry("sp_attention").measured_bytes == \
            ru.entry("sp_attention").measured_bytes
        assert bounded.ledger.bytes_by_tag() == \
            unbounded.ledger.bytes_by_tag()

    def test_span_source_matches_ledger_source(self):
        tracer = Tracer(clock=FakeClock())
        world = run_engine("sp_attn", tracer=tracer)
        from_ledger = audit_comm_volumes(world.ledger, b=B, s=S, h=H,
                                         n=N, m=M, k=K)
        from_spans = audit_comm_volumes(
            tracer.closed_spans(cat="comm"), b=B, s=S, h=H, n=N, m=M,
            k=K)
        assert from_spans.ok
        assert from_spans.entry("sp_attention").measured_bytes == \
            from_ledger.entry("sp_attention").measured_bytes

    def test_only_active_mechanisms_reported(self):
        world = run_engine("sp_attn")
        report = audit_comm_volumes(world.ledger, b=B, s=S, h=H, n=N,
                                    m=M, k=K)
        assert {e.mechanism for e in report.entries} == {"sp_attention"}

    def test_empty_source_not_ok(self):
        report = audit_comm_volumes([], b=B, s=S, h=H, n=N, m=M, k=K)
        assert not report.ok
        assert report.entries == []

    def test_bad_passes(self):
        with pytest.raises(ValueError):
            audit_comm_volumes([], b=B, s=S, h=H, n=N, passes=0)

    def test_render(self):
        world = run_engine("sp_attn")
        report = audit_comm_volumes(world.ledger, b=B, s=S, h=H, n=N,
                                    m=M, k=K)
        text = report.render()
        assert "sp_attention" in text and "Eq. 2" in text and "yes" in text


class TestCrosscheck:
    def test_traced_bytes_match_ledger(self):
        tracer = Tracer(clock=FakeClock())
        world = run_engine("ep_ffn", tracer=tracer)
        ok, traced, ledger_bytes = crosscheck_tracer_ledger(
            tracer, world.ledger)
        assert ok
        assert traced == ledger_bytes > 0

    def test_untraced_record_detected(self):
        from repro.comm.group import CommRecord

        tracer = Tracer(clock=FakeClock())
        world = run_engine("ep_ffn", tracer=tracer)
        # A record slipped into the ledger without passing the tracer.
        world.ledger.record(CommRecord("all_gather", 4, [99.0] * 4))
        ok, traced, ledger_bytes = crosscheck_tracer_ledger(
            tracer, world.ledger)
        assert not ok
        assert ledger_bytes - traced == pytest.approx(396.0)

    def test_empty_world(self):
        ok, traced, ledger_bytes = crosscheck_tracer_ledger(
            Tracer(), World(2, 2).ledger)
        assert ok and traced == 0.0 and ledger_bytes == 0.0


class TestFaultEvents:
    def test_injected_fault_leaves_instant_event(self):
        from repro.comm.collectives import all_gather
        from repro.ft.faults import CommTimeout, FaultPlan, FaultSpec

        tracer = Tracer(clock=FakeClock())
        world = World(2, 2)
        world.attach_tracer(tracer)
        world.attach_fault_plan(FaultPlan([FaultSpec("timeout",
                                                     at_call=0)]))
        g = world.full_group()
        with pytest.raises(CommTimeout):
            all_gather(g, [np.zeros(4), np.zeros(4)], tag="x")
        (event,) = [e for e in tracer.events if e.cat == "fault"]
        assert event.name == "fault:all_gather"
        assert event.attrs["error"] == "CommTimeout"
        # The fault fired before data moved: no comm span was opened.
        assert tracer.closed_spans(cat="comm") == []
        assert tracer.open_depth == 0
