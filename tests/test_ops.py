"""Tests for the NN operators (softmax, rmsnorm, attention, scatter...)."""

import numpy as np
import pytest

from repro.tensor import Tensor, ops

from conftest import gradcheck


class TestConcatSplitStack:
    def test_concat_grad(self, rng):
        gradcheck(lambda a, b: ops.concat([a, b], axis=1),
                  [rng.standard_normal((2, 3)),
                   rng.standard_normal((2, 2))], rng)

    def test_split_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((6, 2)), requires_grad=True)
        parts = ops.split(x, 3)
        recon = ops.concat(parts)
        np.testing.assert_array_equal(recon.data, x.data)

    def test_split_grad(self, rng):
        gradcheck(lambda a: ops.split(a, 2, axis=0)[1],
                  [rng.standard_normal((4, 3))], rng)

    def test_split_indivisible(self):
        with pytest.raises(ValueError, match="not divisible"):
            ops.split(Tensor(np.zeros((5, 2))), 2)

    def test_stack_grad(self, rng):
        gradcheck(lambda a, b: ops.stack([a, b], axis=1),
                  [rng.standard_normal((3, 2)),
                   rng.standard_normal((3, 2))], rng)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = ops.softmax(Tensor(rng.standard_normal((4, 7))))
        np.testing.assert_allclose(out.data.sum(-1), 1.0, rtol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = ops.softmax(Tensor(x)).data
        b = ops.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-7)

    def test_stable_with_large_values(self):
        out = ops.softmax(Tensor(np.array([[1e4, 0.0]])))
        assert np.isfinite(out.data).all()

    def test_grad(self, rng):
        gradcheck(lambda a: ops.softmax(a, axis=-1),
                  [rng.standard_normal((3, 4))], rng)

    def test_log_softmax_grad(self, rng):
        gradcheck(lambda a: ops.log_softmax(a, axis=-1),
                  [rng.standard_normal((3, 4))], rng)

    def test_log_softmax_consistent(self, rng):
        x = Tensor(rng.standard_normal((2, 5)))
        np.testing.assert_allclose(ops.log_softmax(x).data,
                                   np.log(ops.softmax(x).data), rtol=1e-6)


class TestRMSNorm:
    def test_unit_rms(self, rng):
        x = Tensor(rng.standard_normal((4, 16)) * 7.0)
        w = Tensor(np.ones(16))
        out = ops.rmsnorm(x, w).data
        rms = np.sqrt((out ** 2).mean(-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_grad(self, rng):
        gradcheck(lambda a, w: ops.rmsnorm(a, w),
                  [rng.standard_normal((3, 8)),
                   rng.standard_normal(8)], rng)

    def test_scale_applied(self, rng):
        x = Tensor(rng.standard_normal((2, 4)))
        w2 = Tensor(np.full(4, 2.0))
        w1 = Tensor(np.ones(4))
        np.testing.assert_allclose(ops.rmsnorm(x, w2).data,
                                   2 * ops.rmsnorm(x, w1).data, rtol=1e-6)


class TestEmbeddingAndLoss:
    def test_embedding_lookup(self, rng):
        w = Tensor(rng.standard_normal((10, 4)), requires_grad=True)
        ids = np.array([[1, 3], [3, 0]])
        out = ops.embedding(w, ids)
        np.testing.assert_array_equal(out.data[0, 1], w.data[3])

    def test_embedding_sparse_grad(self, rng):
        w = Tensor(rng.standard_normal((10, 4)), requires_grad=True)
        ids = np.array([2, 2, 5])
        ops.embedding(w, ids).sum().backward()
        assert w.grad[2].sum() == pytest.approx(8.0)  # two hits × 4 dims
        assert w.grad[0].sum() == 0.0

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 8)))
        loss = ops.cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(8))

    def test_cross_entropy_grad(self, rng):
        tgt = rng.integers(0, 5, 6)
        gradcheck(lambda a: ops.cross_entropy(a, tgt),
                  [rng.standard_normal((6, 5))], rng, tol=1e-5)

    def test_cross_entropy_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="does not match"):
            ops.cross_entropy(Tensor(rng.standard_normal((4, 5))),
                              np.zeros(3, dtype=int))

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 4), -50.0)
        tgt = np.array([1, 2, 0])
        logits[np.arange(3), tgt] = 50.0
        assert ops.cross_entropy(Tensor(logits), tgt).item() < 1e-6


class TestRowOps:
    def test_take_rows_values(self, rng):
        x = Tensor(rng.standard_normal((5, 3)))
        idx = np.array([4, 0, 4])
        out = ops.take_rows(x, idx)
        np.testing.assert_array_equal(out.data, x.data[idx])

    def test_take_rows_grad_duplicates(self, rng):
        gradcheck(lambda a: ops.take_rows(a, np.array([1, 1, 0])),
                  [rng.standard_normal((3, 2))], rng)

    def test_put_rows_accumulates(self, rng):
        x = Tensor(np.ones((3, 2)))
        out = ops.put_rows(x, np.array([1, 1, 0]), 4)
        np.testing.assert_array_equal(out.data,
                                      [[1, 1], [2, 2], [0, 0], [0, 0]])

    def test_put_rows_grad(self, rng):
        gradcheck(lambda a: ops.put_rows(a, np.array([2, 0, 2]), 4),
                  [rng.standard_normal((3, 2))], rng)

    def test_scatter_gather_inverse(self, rng):
        """take_rows(put_rows(x, perm), perm) == x for permutations."""
        x = Tensor(rng.standard_normal((6, 3)))
        perm = np.random.default_rng(1).permutation(6)
        out = ops.take_rows(ops.put_rows(x, perm, 6), perm)
        np.testing.assert_allclose(out.data, x.data)

    def test_index_add_rows(self, rng):
        base = Tensor(np.zeros((4, 2)))
        rows = Tensor(np.ones((2, 2)))
        out = ops.index_add_rows(base, np.array([3, 3]), rows)
        assert out.data[3].tolist() == [2.0, 2.0]

    def test_index_add_rows_grad(self, rng):
        gradcheck(
            lambda a, b: ops.index_add_rows(a, np.array([0, 2]), b),
            [rng.standard_normal((3, 2)), rng.standard_normal((2, 2))],
            rng)


class TestMaskingDropout:
    def test_masked_fill(self, rng):
        x = Tensor(rng.standard_normal((2, 3)))
        mask = np.array([[True, False, True], [False, False, True]])
        out = ops.masked_fill(x, mask, -1.0)
        assert (out.data[mask] == -1.0).all()
        np.testing.assert_array_equal(out.data[~mask], x.data[~mask])

    def test_masked_fill_grad_blocked(self, rng):
        x = Tensor(rng.standard_normal((4,)), requires_grad=True)
        mask = np.array([True, False, False, True])
        ops.masked_fill(x, mask, 0.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0, 1, 1, 0])

    def test_dropout_eval_passthrough(self, rng):
        x = Tensor(rng.standard_normal((5,)))
        out = ops.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_scaling(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10000,)))
        out = ops.dropout(x, 0.25, rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)


class TestRoPE:
    def test_norm_preserved(self, rng):
        """Rotation preserves the norm of each (x_i, x_{i+half}) pair."""
        x = Tensor(rng.standard_normal((1, 6, 2, 8)))
        out = ops.rope_rotate(x)
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=-1),
            np.linalg.norm(x.data, axis=-1), rtol=1e-6)

    def test_position_zero_identity(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 2, 8)))
        out = ops.rope_rotate(x, positions=np.array([0.0]))
        np.testing.assert_allclose(out.data, x.data, atol=1e-12)

    def test_sharded_positions_match_full(self, rng):
        """RoPE on a sequence shard with explicit positions equals the
        corresponding slice of full-sequence RoPE — what SP relies on."""
        x = rng.standard_normal((1, 8, 2, 4))
        full = ops.rope_rotate(Tensor(x)).data
        part = ops.rope_rotate(Tensor(x[:, 4:]),
                               positions=np.arange(4, 8)).data
        np.testing.assert_allclose(part, full[:, 4:], atol=1e-12)

    def test_grad(self, rng):
        gradcheck(lambda a: ops.rope_rotate(a),
                  [rng.standard_normal((1, 3, 2, 4))], rng)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError, match="even"):
            ops.rope_rotate(Tensor(np.zeros((1, 2, 2, 5))))


class TestAttention:
    def test_causal_ignores_future(self, rng):
        """Changing a future token must not affect earlier outputs."""
        q = rng.standard_normal((1, 2, 6, 4))
        k = rng.standard_normal((1, 2, 6, 4))
        v = rng.standard_normal((1, 2, 6, 4))
        base = ops.scaled_dot_product_attention(
            Tensor(q), Tensor(k), Tensor(v)).data
        k2, v2 = k.copy(), v.copy()
        k2[:, :, 5] += 10.0
        v2[:, :, 5] += 10.0
        pert = ops.scaled_dot_product_attention(
            Tensor(q), Tensor(k2), Tensor(v2)).data
        np.testing.assert_allclose(pert[:, :, :5], base[:, :, :5],
                                   atol=1e-10)

    def test_non_causal_full_mixing(self, rng):
        q = rng.standard_normal((1, 1, 3, 2))
        k = rng.standard_normal((1, 1, 3, 2))
        v = rng.standard_normal((1, 1, 3, 2))
        out = ops.scaled_dot_product_attention(
            Tensor(q), Tensor(k), Tensor(v), causal=False)
        assert out.shape == (1, 1, 3, 2)

    def test_gqa_equals_explicit_repeat(self, rng):
        """GQA must equal manually repeating KV heads."""
        q = rng.standard_normal((1, 4, 5, 3))
        k = rng.standard_normal((1, 2, 5, 3))
        v = rng.standard_normal((1, 2, 5, 3))
        gqa = ops.scaled_dot_product_attention(
            Tensor(q), Tensor(k), Tensor(v)).data
        krep = np.repeat(k, 2, axis=1)
        vrep = np.repeat(v, 2, axis=1)
        full = ops.scaled_dot_product_attention(
            Tensor(q), Tensor(krep), Tensor(vrep)).data
        np.testing.assert_allclose(gqa, full, atol=1e-12)

    def test_gqa_indivisible_rejected(self, rng):
        q = Tensor(rng.standard_normal((1, 3, 4, 2)))
        kv = Tensor(rng.standard_normal((1, 2, 4, 2)))
        with pytest.raises(ValueError, match="multiple"):
            ops.scaled_dot_product_attention(q, kv, kv)

    def test_grad_gqa(self, rng):
        gradcheck(
            lambda q, k, v: ops.scaled_dot_product_attention(q, k, v),
            [rng.standard_normal((1, 4, 4, 3)),
             rng.standard_normal((1, 2, 4, 3)),
             rng.standard_normal((1, 2, 4, 3))], rng)


class TestPrecisionCast:
    def test_forward_rounds(self, rng):
        from repro.precision.formats import round_bf16
        x = Tensor(rng.standard_normal((8,)).astype(np.float64),
                   requires_grad=True)
        out = ops.precision_cast(x, round_bf16)
        np.testing.assert_array_equal(out.data, round_bf16(x.data))

    def test_backward_straight_through(self, rng):
        from repro.precision.formats import round_bf16
        x = Tensor(rng.standard_normal((8,)), requires_grad=True)
        ops.precision_cast(x, round_bf16).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(8))

    def test_grad_rounding_applied(self, rng):
        from repro.precision.formats import round_bf16
        x = Tensor(rng.standard_normal((8,)).astype(np.float64),
                   requires_grad=True)
        out = ops.precision_cast(x, lambda v: v, grad_round_fn=round_bf16)
        g = rng.standard_normal(8)
        out.backward(g)
        np.testing.assert_array_equal(x.grad, round_bf16(g))
