"""Serving subsystem (repro.serve) tests.

Coverage in four layers: the paged-KV plumbing (allocator accounting,
GQA-shaped pool, block-table reads/writes), the determinism contract
(continuous-batched output bitwise vs the unbatched sequential golden,
across GQA ratios, ragged lengths, staggered admission, eviction,
threading, and mid-stream rank crashes), the leak/trace contracts at
shutdown, and the serve verify registry — including proof that each
``serve_*`` invariant catches a hand-tampered artifact of its bug
class, and that the verify-telemetry fix fails loudly when an EP
engine stops exposing dispatch telemetry.
"""

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig, ServeConfig
from repro.ft import FaultPlan, FaultSpec
from repro.model import MoETransformer
from repro.obs import Tracer
from repro.serve import (
    BlockAllocator,
    KVLeakError,
    KVPool,
    OutOfKVBlocks,
    PagedKVCache,
    Request,
    ServeEngine,
    VirtualClock,
    bursty_trace,
    golden_decode,
    latency_summary,
    poisson_trace,
)
from repro.verify import (
    ServeCase,
    run_serve_case,
    serve_matrix,
)
from repro.verify.engine import ServeArtifacts
from repro.verify.invariants import (
    _check_serve_comm_balance,
    _check_serve_golden,
    _check_serve_leaks,
)


def tiny_model(gqa_ratio=2, n_layers=2, seed=0):
    config = ModelConfig("serve-test", n_layers, 32, 8, gqa_ratio, 48,
                         8, 2, vocab_size=64, seq_len=64)
    return MoETransformer(config, seed=seed, dtype=np.float64)


def serve_config(**kw):
    base = dict(attention_ranks=2, expert_ranks=2, kv_block_size=4,
                kv_blocks=64, max_batch_size=3)
    base.update(kw)
    return ServeConfig(**base)


def run_engine(model, config, requests, fault_plan=None,
               with_tracer=True):
    world = World(config.world_size)
    if fault_plan is not None:
        world.attach_fault_plan(fault_plan)
    clock = VirtualClock()
    tracer = Tracer(clock=clock) if with_tracer else None
    engine = ServeEngine(model, config, world=world, tracer=tracer,
                         clock=clock)
    try:
        result = engine.run(requests)
    finally:
        engine.shutdown()
    return result, engine, world


def assert_bitwise(result, golden):
    assert set(result.results) == set(golden.results)
    for rid, got in result.results.items():
        want = golden.results[rid]
        assert got.generated == want.generated, f"request {rid} tokens"
        assert len(got.logits) == len(want.logits)
        for step, (a, b) in enumerate(zip(got.logits, want.logits)):
            assert np.array_equal(a, b), f"request {rid} step {step}"


class TestBlockAllocator:
    def test_accounting(self):
        alloc = BlockAllocator(4)
        a = alloc.allocate(3)
        assert alloc.in_use == 3 and alloc.free_blocks == 1
        assert alloc.allocated_total == 3
        alloc.free(a)
        assert alloc.in_use == 0
        assert alloc.freed_total == 3
        alloc.assert_no_leaks()

    def test_all_or_nothing(self):
        alloc = BlockAllocator(2)
        with pytest.raises(OutOfKVBlocks):
            alloc.allocate(3)
        assert alloc.in_use == 0  # failed allocation takes nothing

    def test_double_free_rejected(self):
        alloc = BlockAllocator(2)
        blocks = alloc.allocate(1)
        alloc.free(blocks)
        with pytest.raises(ValueError, match="double free"):
            alloc.free(blocks)

    def test_leak_detected(self):
        alloc = BlockAllocator(2)
        alloc.allocate(1)
        with pytest.raises(KVLeakError, match="1 blocks still held"):
            alloc.assert_no_leaks()


class TestKVPool:
    def test_gqa_head_axis(self):
        # The pool stores n_kv_heads = n_heads / gqa_ratio heads, not
        # n_heads — the structural GQA memory saving.
        pool = KVPool(n_layers=2, n_kv_heads=2, head_dim=4,
                      n_blocks=8, block_size=4)
        assert pool.k.shape == (2, 8, 4, 2, 4)
        assert pool.v.shape == pool.k.shape

    def test_put_gather_roundtrip_across_blocks(self):
        rng = np.random.default_rng(0)
        pool = KVPool(n_layers=1, n_kv_heads=2, head_dim=3,
                      n_blocks=8, block_size=4)
        cache = PagedKVCache(pool)
        k = rng.standard_normal((10, 2, 3))
        v = rng.standard_normal((10, 2, 3))
        cache.ensure_capacity(10)
        cache.put(0, k[:6], v[:6], start=0)
        cache.put(0, k[6:], v[6:], start=6)
        cache.advance(10)
        k_got, v_got = cache.gather(0, 10)
        assert np.array_equal(k_got, k)
        assert np.array_equal(v_got, v)
        cache.release()
        pool.allocator.assert_no_leaks()

    def test_put_past_capacity_rejected(self):
        pool = KVPool(1, 2, 3, n_blocks=2, block_size=4)
        cache = PagedKVCache(pool)
        cache.ensure_capacity(4)
        with pytest.raises(OutOfKVBlocks, match="capacity"):
            cache.put(0, np.zeros((5, 2, 3)), np.zeros((5, 2, 3)), 0)
        cache.release()

    def test_release_is_idempotent_and_resets(self):
        pool = KVPool(1, 2, 3, n_blocks=4, block_size=4)
        cache = PagedKVCache(pool)
        cache.ensure_capacity(6)
        cache.advance(6)
        cache.release()
        cache.release()
        assert cache.length == 0 and cache.blocks == []
        pool.allocator.assert_no_leaks()


class TestArrivals:
    def test_poisson_seeded_and_sorted(self):
        a = poisson_trace(8, rate=1.0, vocab=32, seed=3)
        b = poisson_trace(8, rate=1.0, vocab=32, seed=3)
        assert a == b
        times = [r.arrival_time for r in a]
        assert times == sorted(times)
        assert all(1 <= len(r.prompt) for r in a)

    def test_bursty_groups(self):
        trace = bursty_trace(6, burst_size=3, burst_gap=2.0, vocab=32)
        times = [r.arrival_time for r in trace]
        assert times == [0.0, 0.0, 0.0, 2.0, 2.0, 2.0]

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(0, prompt=(), max_new_tokens=1)
        with pytest.raises(ValueError):
            Request(0, prompt=(1,), max_new_tokens=0)
        with pytest.raises(ValueError):
            Request(0, prompt=(1,), max_new_tokens=1, arrival_time=-1)

    def test_virtual_clock(self):
        clock = VirtualClock()
        clock.advance(2.5)
        clock.advance_to(1.0)  # no-op backwards
        assert clock() == 2.5
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_latency_summary_deterministic(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        for i, dur in enumerate([1.0, 2.0, 3.0, 4.0]):
            tracer.record_span(f"request-{i}", start=float(i),
                               end=float(i) + dur, cat="serve.request",
                               pid="serve", new_tokens=2)
        lat = latency_summary(tracer)
        assert lat["count"] == 4.0
        assert lat["p50"] == pytest.approx(2.5)
        assert lat["mean"] == pytest.approx(2.5)
        assert lat["throughput_tokens"] == pytest.approx(8.0 / 7.0)

    def test_latency_summary_empty(self):
        lat = latency_summary(Tracer(clock=VirtualClock()))
        assert lat["count"] == 0.0 and lat["p50"] == 0.0


class TestPrefillExactness:
    def test_prefill_logits_match_model_forward(self):
        """The prefill step of the serving engine runs the reference
        RoPE/attention code path, so its first-token logits are
        bitwise-equal to a whole-prompt model forward."""
        model = tiny_model()
        config = serve_config(max_batch_size=1)
        prompt = (5, 17, 30, 2)
        req = Request(0, prompt=prompt, max_new_tokens=1)
        result, _, _ = run_engine(model, config, [req])
        ref = model(np.asarray([prompt]))
        assert np.array_equal(
            result.results[0].logits[0],
            np.ascontiguousarray(ref.logits.data[0, -1]))


class TestGoldenBitwise:
    @pytest.mark.parametrize("gqa_ratio", [1, 2, 4])
    def test_batched_matches_golden(self, gqa_ratio):
        model = tiny_model(gqa_ratio=gqa_ratio)
        config = serve_config()
        requests = poisson_trace(6, rate=0.5, vocab=64, seed=1)
        result, _, _ = run_engine(model, config, requests)
        assert_bitwise(result, golden_decode(model, config, requests))

    def test_ragged_lengths_and_simultaneous_admission(self):
        model = tiny_model()
        config = serve_config(max_batch_size=4)
        requests = [
            Request(0, prompt=(1,), max_new_tokens=6),
            Request(1, prompt=tuple(range(9)), max_new_tokens=2),
            Request(2, prompt=(3, 4), max_new_tokens=4),
            Request(3, prompt=(60, 61, 62), max_new_tokens=1),
        ]
        result, _, _ = run_engine(model, config, requests)
        assert_bitwise(result, golden_decode(model, config, requests))

    def test_staggered_admission_mid_stream(self):
        # Request 2 arrives while 0 and 1 are mid-decode; batch
        # composition changes every few iterations.
        model = tiny_model()
        config = serve_config(max_batch_size=2)
        requests = [
            Request(0, prompt=(1, 2), max_new_tokens=5,
                    arrival_time=0.0),
            Request(1, prompt=(3, 4, 5), max_new_tokens=5,
                    arrival_time=0.5),
            Request(2, prompt=(6,), max_new_tokens=3,
                    arrival_time=2.0),
        ]
        result, _, _ = run_engine(model, config, requests)
        assert result.n_iterations > 5
        assert_bitwise(result, golden_decode(model, config, requests))

    def test_threaded_matches_sequential(self):
        model = tiny_model()
        requests = poisson_trace(6, rate=0.5, vocab=64, seed=2)
        seq, _, _ = run_engine(model, serve_config(), requests)
        thr, _, _ = run_engine(
            model, serve_config(execution="threaded"), requests)
        assert_bitwise(thr, seq)

    def test_eviction_replays_bitwise(self):
        # A pool too small for the batch forces mid-stream evictions;
        # victims replay from scratch and still match the golden.
        model = tiny_model()
        config = serve_config(kv_blocks=5, max_batch_size=4)
        requests = poisson_trace(6, rate=1.0, vocab=64, seed=0)
        result, _, _ = run_engine(model, config, requests)
        assert result.n_evictions > 0
        assert_bitwise(result, golden_decode(model, config, requests))

    def test_oversized_request_rejected_upfront(self):
        model = tiny_model()
        config = serve_config(kv_blocks=2, kv_block_size=4)
        req = Request(0, prompt=tuple(range(7)), max_new_tokens=4)
        world = World(config.world_size)
        engine = ServeEngine(model, config, world=world)
        with pytest.raises(OutOfKVBlocks, match="request 0"):
            engine.run([req])
        engine._requeue_all(__import__("collections").deque())
        engine.shutdown()

    def test_duplicate_request_ids_rejected(self):
        model = tiny_model(n_layers=1)
        engine = ServeEngine(model, serve_config())
        reqs = [Request(0, prompt=(1,), max_new_tokens=1),
                Request(0, prompt=(2,), max_new_tokens=1)]
        with pytest.raises(ValueError, match="duplicate"):
            engine.run(reqs)
        engine.shutdown()


class TestCrashRecovery:
    def test_crash_requeues_and_completes_bitwise(self):
        model = tiny_model()
        config = serve_config()
        requests = poisson_trace(6, rate=0.5, vocab=64, seed=0)
        plan = FaultPlan([FaultSpec(kind="crash", at_call=5)])
        result, _, world = run_engine(model, config, requests,
                                      fault_plan=plan)
        assert result.n_crashes == 1
        assert [e.kind for e in plan.fired] == ["crash"]
        assert len(result.results) == len(requests)
        assert_bitwise(result, golden_decode(model, config, requests))

    def test_restart_counts_survive_readmission(self):
        model = tiny_model()
        config = serve_config()
        requests = poisson_trace(6, rate=0.5, vocab=64, seed=0)
        plan = FaultPlan([FaultSpec(kind="crash", at_call=5)])
        result, _, _ = run_engine(model, config, requests,
                                  fault_plan=plan)
        assert sum(r.restarts for r in result.results.values()) >= 1


class TestLeakContract:
    def test_shutdown_flags_leaked_block(self):
        model = tiny_model(n_layers=1)
        engine = ServeEngine(model, serve_config())
        engine.pool.allocator.allocate(1)  # simulate a lost block
        with pytest.raises(KVLeakError):
            engine.shutdown()

    def test_shutdown_flags_open_span_stack(self):
        model = tiny_model(n_layers=1)
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        engine = ServeEngine(model, serve_config(), tracer=tracer,
                             clock=clock)
        tracer.begin("dangling", cat="test")
        with pytest.raises(KVLeakError, match="span stacks"):
            engine.shutdown()

    def test_clean_run_leaks_nothing(self):
        model = tiny_model(n_layers=1)
        requests = poisson_trace(4, rate=1.0, vocab=64, seed=0)
        _, engine, _ = run_engine(model, serve_config(), requests)
        assert engine.pool.allocator.in_use == 0
        assert (engine.pool.allocator.allocated_total
                == engine.pool.allocator.freed_total > 0)

    def test_run_after_shutdown_rejected(self):
        model = tiny_model(n_layers=1)
        engine = ServeEngine(model, serve_config())
        engine.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            engine.run([Request(0, prompt=(1,), max_new_tokens=1)])


class TestBridgeLedger:
    def test_dispatch_combine_balanced_and_tagged(self):
        model = tiny_model()
        requests = poisson_trace(4, rate=1.0, vocab=64, seed=0)
        _, _, world = run_engine(model, serve_config(), requests)
        tags = world.ledger.bytes_by_tag()
        assert set(tags) == {"serve:dispatch_a2a", "serve:combine_a2a"}
        assert tags["serve:dispatch_a2a"] == tags["serve:combine_a2a"]
        assert tags["serve:dispatch_a2a"] > 0

    def test_latency_percentiles_from_virtual_clock(self):
        model = tiny_model(n_layers=1)
        requests = poisson_trace(5, rate=1.0, vocab=64, seed=0)
        r1, _, _ = run_engine(model, serve_config(), requests)
        r2, _, _ = run_engine(model, serve_config(), requests)
        assert r1.latency == r2.latency  # exact, CI-stable numbers
        assert r1.latency["count"] == 5.0
        assert r1.latency["p99"] >= r1.latency["p95"] >= \
            r1.latency["p50"] > 0


class TestServeCase:
    def test_defaults_and_case_id(self):
        case = ServeCase()
        assert case.case_id == "serve-poisson-seq-a2-x2-b3-n6-g2"
        assert ServeCase(execution="threaded",
                         crash_at_call=5).case_id.endswith("-cr5")

    @pytest.mark.parametrize("changes", [
        dict(attention_ranks=0),
        dict(experts=6, expert_ranks=4),   # not divisible
        dict(heads=6, gqa_ratio=4),        # not divisible
        dict(trace="uniform"),
        dict(execution="mpi"),
        dict(max_batch_size=0),
    ])
    def test_validation_rejects(self, changes):
        with pytest.raises(ValueError):
            ServeCase(**changes)

    def test_matrix_covers_required_legs(self):
        cases = serve_matrix()
        ids = [c.case_id for c in cases]
        assert len(ids) == len(set(ids))
        assert any("thr" in i for i in ids)
        assert any("-cr" in i for i in ids)
        assert any("bursty" in i for i in ids)
        assert any(c.gqa_ratio > 2 for c in cases)

    def test_run_serve_case_conformant(self):
        case = ServeCase(n_requests=3, layers=1)
        result = run_serve_case(case)
        assert result.ok, result.render_line()


def _artifacts(**overrides):
    """A minimal healthy ServeArtifacts for tamper tests."""
    from repro.serve.scheduler import RequestResult, ServeResult

    def res(gen, logits):
        return ServeResult(
            results={0: RequestResult(0, (1,), list(gen),
                                      [np.asarray(l) for l in logits],
                                      0.0, 1.0, 0)},
            n_iterations=2, n_crashes=0, n_evictions=0)

    base = dict(
        case=ServeCase(),
        requests=[Request(0, prompt=(1,), max_new_tokens=2)],
        result=res([3, 4], [[0.0, 1.0], [1.0, 0.0]]),
        golden=res([3, 4], [[0.0, 1.0], [1.0, 0.0]]),
        ledger_by_tag={"serve:dispatch_a2a": 64.0,
                       "serve:combine_a2a": 64.0},
        ledger_counts={"all_to_all": 4},
        allocator={"in_use": 0, "allocated_total": 3,
                   "freed_total": 3},
        thread_stacks={},
        shutdown_error="",
    )
    base.update(overrides)
    return ServeArtifacts(**base)


class TestServeInvariantsCatchBugs:
    def test_healthy_artifacts_pass(self):
        art = _artifacts()
        assert not _check_serve_golden(art)
        assert not _check_serve_comm_balance(art)
        assert not _check_serve_leaks(art)

    def test_golden_catches_token_divergence(self):
        from repro.serve.scheduler import RequestResult, ServeResult
        bad = ServeResult(
            results={0: RequestResult(0, (1,), [3, 5],
                                      [np.asarray([0.0, 1.0]),
                                       np.asarray([1.0, 0.0])],
                                      0.0, 1.0, 0)},
            n_iterations=2, n_crashes=0, n_evictions=0)
        violations = _check_serve_golden(_artifacts(result=bad))
        assert violations and "request 0" in violations[0]

    def test_golden_catches_logit_bitflip(self):
        art = _artifacts()
        art.result.results[0].logits[1] = np.asarray([1.0, 1e-16])
        assert _check_serve_golden(art)

    def test_golden_catches_dropped_request(self):
        from repro.serve.scheduler import ServeResult
        empty = ServeResult(results={}, n_iterations=2, n_crashes=0,
                            n_evictions=0)
        violations = _check_serve_golden(_artifacts(result=empty))
        assert violations

    def test_comm_balance_catches_imbalance(self):
        art = _artifacts(ledger_by_tag={"serve:dispatch_a2a": 64.0,
                                        "serve:combine_a2a": 32.0})
        assert _check_serve_comm_balance(art)

    def test_comm_balance_catches_untagged_traffic(self):
        art = _artifacts(ledger_by_tag={"serve:dispatch_a2a": 64.0,
                                        "serve:combine_a2a": 64.0,
                                        "": 8.0})
        assert _check_serve_comm_balance(art)

    def test_leaks_catches_held_blocks(self):
        art = _artifacts(allocator={"in_use": 1, "allocated_total": 3,
                                    "freed_total": 2})
        assert _check_serve_leaks(art)

    def test_leaks_catches_open_spans(self):
        assert _check_serve_leaks(_artifacts(thread_stacks={123: 2}))

    def test_leaks_catches_shutdown_error(self):
        assert _check_serve_leaks(
            _artifacts(shutdown_error="KVLeakError: boom"))


class TestTelemetrySoundness:
    """The satellite fix: verify's telemetry invariants must fail
    loudly — naming the engine — when an EP FFN engine stops exposing
    dispatch telemetry, instead of passing vacuously."""

    def _case(self):
        from repro.verify import VerifyCase
        return VerifyCase(ranks=2, layers=1, hidden=16, heads=4,
                          gqa_ratio=2, ffn_hidden=16, experts=2,
                          top_k=1, vocab=32, batch=1, seq=4, steps=1)

    def test_normal_ep_case_reports_telemetry(self):
        from repro.verify import run_case
        result = run_case(self._case())
        by_name = {o.name: o.status for o in result.outcomes}
        assert by_name["token_conservation"] == "pass"
        assert by_name["router_mass"] == "pass"

    def test_missing_telemetry_fails_loudly(self, monkeypatch):
        from repro.parallel import ep_ffn
        from repro.verify import run_case

        orig = ep_ffn.EPFFNEngine.forward

        def stripped(self, *args, **kwargs):
            out = orig(self, *args, **kwargs)
            self.last_telemetry = None
            return out

        monkeypatch.setattr(ep_ffn.EPFFNEngine, "forward", stripped)
        result = run_case(self._case())
        by_name = {o.name: o for o in result.outcomes}
        for name in ("token_conservation", "router_mass"):
            assert by_name[name].status == "fail"
            assert "telemetry missing" in by_name[name].detail
            assert "EPFFNEngine" in by_name[name].detail


class TestDagExecutorRetain:
    def test_retain_releases_intermediates(self):
        """Forward-only mode drops every anchor after its last reader;
        only inputs and the retained set survive in the result env."""
        from repro.serve.decode import (DecodeState,
                                        build_decode_bindings,
                                        decode_program)
        from repro.serve.placement import DisaggregatedPlacement
        from repro.runtime.dag_executor import DagExecutor
        from repro.tensor import ops

        model = tiny_model(n_layers=1)
        config = serve_config()
        placement = DisaggregatedPlacement(model.config.n_experts,
                                           config)
        state = DecodeState(model=model, placement=placement)
        pool = KVPool(1, 4, 4, n_blocks=16, block_size=4)
        from repro.serve.decode import ActiveRequest
        req = Request(0, prompt=(1, 2, 3), max_new_tokens=1)
        item = ActiveRequest(req, PagedKVCache(pool), 0)
        item.cache.ensure_capacity(3)
        state.batch = [[item], []]
        executor = DagExecutor(
            decode_program(), build_decode_bindings(state),
            placement.world.group(placement.attn_ranks),
            inputs=("hidden",))
        hidden = [[ops.embedding(model.embedding,
                                 item.cur_ids[None, :])], []]
        result = executor.run({"hidden": hidden},
                              retain=("ffn_residual",))
        assert "ffn_residual" in result.env
        assert "hidden" in result.env  # inputs always survive
        assert "qkv" not in result.env
        assert "moe_experts" not in result.env
        item.cache.release()
        pool.allocator.assert_no_leaks()
