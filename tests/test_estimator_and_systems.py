"""Tests for the kernel-duration model and the system perf models."""

import pytest

from repro.core.config import (
    GPU_SPECS,
    MODEL_ZOO,
    ParallelConfig,
    TrainConfig,
)
from repro.core.operators import Op, OpGraph, build_forward_graph
from repro.core.schedule import OverlapConfig
from repro.obs.tracer import Span
from repro.perf.estimator import (
    CalibrationReport,
    KernelModel,
    calibrate_from_spans,
    calibrated_durations,
)
from repro.perf.mfu import days_for_tokens, mfu, tokens_per_second
from repro.perf.systems import (
    MegaScalePerfModel,
    MegatronPerfModel,
    SystemPerfModel,
)

H800 = GPU_SPECS["h800"]
MODEL352 = MODEL_ZOO["internal-352b"]


class TestKernelModel:
    def test_gemm_roofline_compute_bound(self):
        km = KernelModel(H800)
        op = Op("g", "gemm", flops=1e12, mem_bytes=1e6,
                gemm_shape=(8192, 8192, 8192))
        t = km.op_duration(op)
        assert t >= 1e12 / H800.peak_flops  # can't beat peak

    def test_gemm_memory_bound_when_thin(self):
        km = KernelModel(H800)
        op = Op("g", "gemm", flops=1e6, mem_bytes=1e9)
        t = km.op_duration(op)
        assert t >= 1e9 / H800.memory_bandwidth

    def test_shape_factor_penalizes_thin_dims(self):
        km = KernelModel(H800)
        fat = km.gemm_efficiency(4096, 4096, 14336)
        thin = km.gemm_efficiency(4096, 4096, 14336 / 8)
        assert thin < fat

    def test_shape_factor_neutral_without_shape(self):
        km = KernelModel(H800)
        assert km._shape_factor((0.0, 0.0, 0.0)) == 1.0

    def test_comm_scope_selects_link(self):
        km = KernelModel(H800)
        intra = Op("c1", "comm", comm_bytes=1e8, comm_pattern="ag",
                   comm_scope="intra")
        inter = Op("c2", "comm", comm_bytes=1e8, comm_pattern="ag",
                   comm_scope="inter")
        assert km.op_duration(inter) > km.op_duration(intra)

    def test_a2a_pays_efficiency_penalty(self):
        km = KernelModel(H800)
        ring = Op("r", "comm", comm_bytes=1e8, comm_pattern="ag")
        a2a = Op("a", "comm", comm_bytes=1e8, comm_pattern="a2a")
        assert km.op_duration(a2a) > km.op_duration(ring)

    def test_memory_op_time(self):
        km = KernelModel(H800, mem_eff=0.8)
        op = Op("m", "memory", mem_bytes=1e9)
        assert km.op_duration(op) == pytest.approx(
            1e9 / (H800.memory_bandwidth * 0.8) + km.kernel_latency)

    def test_durations_cover_graph(self):
        km = KernelModel(H800)
        graph = build_forward_graph(MODEL_ZOO["mixtral-8x7b"],
                                    ParallelConfig.megascale(8), 1)
        d = km.durations(graph)
        assert set(d) == {op.name for op in graph}
        assert all(v > 0 for v in d.values())


class TestSpanCalibration:
    def graph(self):
        return OpGraph([
            Op("a", "memory", mem_bytes=1e6),
            Op("b", "memory", mem_bytes=2e6, deps=("a",)),
            Op("c", "memory", mem_bytes=4e6, deps=("b",)),
        ])

    def span(self, anchor, duration, ops=None):
        return Span(name=f"dag.op:{anchor}", start=0.0, end=duration,
                    attrs={"ops": ops or anchor})

    def test_scales_match_measured_over_predicted(self):
        km = KernelModel(H800)
        graph = self.graph()
        predicted_a = km.op_duration(graph["a"])
        report = calibrate_from_spans(km, graph, [
            self.span("a", 3 * predicted_a),
            self.span("a", 5 * predicted_a),  # averages to 4x
        ])
        assert report.anchors["a"].samples == 2
        assert report.anchors["a"].scale == pytest.approx(4.0)

    def test_covers_group_sums_predictions(self):
        km = KernelModel(H800)
        graph = self.graph()
        predicted = (km.op_duration(graph["b"])
                     + km.op_duration(graph["c"]))
        report = calibrate_from_spans(km, graph, [
            self.span("b", 2 * predicted, ops="b,c"),
        ])
        assert report.anchors["b"].scale == pytest.approx(2.0)
        assert report.scale_for("c") == report.scale_for("b")

    def test_untraced_ops_use_median_scale(self):
        km = KernelModel(H800)
        graph = self.graph()
        report = calibrate_from_spans(km, graph, [
            self.span("a", 2 * km.op_duration(graph["a"])),
        ])
        assert report.scale_for("c") == pytest.approx(
            report.default_scale)
        durations = calibrated_durations(km, graph, report)
        assert durations["a"] == pytest.approx(
            2 * km.op_duration(graph["a"]))

    def test_non_dag_spans_ignored(self):
        km = KernelModel(H800)
        graph = self.graph()
        other = Span(name="collective:ag", start=0.0, end=1.0)
        report = calibrate_from_spans(km, graph, [other])
        assert report.anchors == {}
        assert report.default_scale == 1.0

    def test_empty_report_is_identity(self):
        km = KernelModel(H800)
        graph = self.graph()
        durations = calibrated_durations(km, graph,
                                         CalibrationReport())
        assert durations == km.durations(graph)


class TestMFUHelpers:
    def test_tokens_per_second(self):
        assert tokens_per_second(1e6, 2.0) == 5e5

    def test_rejects_bad_time(self):
        with pytest.raises(ValueError):
            tokens_per_second(1e6, 0.0)

    def test_mfu_range(self):
        value = mfu(MODEL352, H800, 1440, 1.4e6)
        assert 0.0 < value < 1.0

    def test_days_for_tokens(self):
        assert days_for_tokens(1e12 / 86400.0) == pytest.approx(1.0)


class TestSystemModels:
    def iteration(self, system, model, parallel, gbs=720, gpu=H800):
        return system.iteration(model, parallel,
                                TrainConfig(global_batch_size=gbs), gpu)

    def test_table3_speedup_band(self):
        """Strong scaling: MegaScale beats Megatron by 1.6–2.0× (paper:
        1.65–1.88×) at every scale."""
        for n_gpus in (240, 480, 720, 960, 1440):
            dp = n_gpus // 120
            ms = self.iteration(MegaScalePerfModel(), MODEL352,
                                ParallelConfig.megascale(8, 15, dp))
            mg = self.iteration(MegatronPerfModel(), MODEL352,
                                ParallelConfig.megatron(8, 15, dp))
            speedup = mg.iteration_time / ms.iteration_time
            assert 1.5 < speedup < 2.1, (n_gpus, speedup)

    def test_table3_absolute_times_close_to_paper(self):
        """Iteration times land within 25% of Table 3's numbers."""
        paper = {240: (39.94, 21.61), 1440: (7.90, 4.19)}
        for n_gpus, (mg_paper, ms_paper) in paper.items():
            dp = n_gpus // 120
            ms = self.iteration(MegaScalePerfModel(), MODEL352,
                                ParallelConfig.megascale(8, 15, dp))
            mg = self.iteration(MegatronPerfModel(), MODEL352,
                                ParallelConfig.megatron(8, 15, dp))
            assert ms.iteration_time == pytest.approx(ms_paper, rel=0.25)
            assert mg.iteration_time == pytest.approx(mg_paper, rel=0.25)

    def test_mfu_declines_with_scale(self):
        """Fixed global batch + more GPUs → fewer micro-batches → more
        bubble → lower MFU (Table 3's trend)."""
        mfus = []
        for n_gpus in (240, 720, 1440):
            dp = n_gpus // 120
            br = self.iteration(MegaScalePerfModel(), MODEL352,
                                ParallelConfig.megascale(8, 15, dp))
            mfus.append(br.mfu(MODEL352, H800))
        assert mfus[0] > mfus[1] > mfus[2]

    def test_weak_scaling_near_linear(self):
        """Fig. 11: throughput grows ~linearly when batch scales with
        GPUs."""
        t480 = self.iteration(MegaScalePerfModel(), MODEL352,
                              ParallelConfig.megascale(8, 15, 4),
                              gbs=360).tokens_per_second
        t1440 = self.iteration(MegaScalePerfModel(), MODEL352,
                               ParallelConfig.megascale(8, 15, 12),
                               gbs=1080).tokens_per_second
        assert t1440 / t480 == pytest.approx(3.0, rel=0.05)

    def test_fig12_mfu_order_across_gpus(self):
        """Fig. 12: MFU decreases as GPU compute capability increases
        (H20 > A100 > H800), and MegaScale always beats Megatron."""
        mix = MODEL_ZOO["mixtral-8x7b"]
        mfus = {}
        for name in ("h800", "a100", "h20"):
            gpu = GPU_SPECS[name]
            ms = MegaScalePerfModel().iteration(
                mix, ParallelConfig.megascale(8, 1, 4),
                TrainConfig(global_batch_size=32), gpu)
            mg = MegatronPerfModel(full_recompute=False).iteration(
                mix, ParallelConfig.megatron(8, 1, 4),
                TrainConfig(global_batch_size=32), gpu)
            mfus[name] = (ms.mfu(mix, gpu), mg.mfu(mix, gpu))
            assert mfus[name][0] > mfus[name][1], name
        assert mfus["h20"][0] > mfus["a100"][0] > mfus["h800"][0]

    def test_fig12_exposed_comm_shrinks(self):
        mix = MODEL_ZOO["mixtral-8x7b"]
        ms = MegaScalePerfModel().iteration(
            mix, ParallelConfig.megascale(8, 1, 4),
            TrainConfig(global_batch_size=32), H800)
        mg = MegatronPerfModel(full_recompute=False).iteration(
            mix, ParallelConfig.megatron(8, 1, 4),
            TrainConfig(global_batch_size=32), H800)
        assert ms.fraction("exposed_comm_time") < \
            0.35 * mg.fraction("exposed_comm_time")

    def test_fig13_strategy_ordering(self):
        """SP+EP > SP+TP, TP+EP > TP+TP in MFU with overlap disabled
        (the parallelism-only ablation)."""
        model = MODEL_ZOO["mixtral-8x7b"].scaled(n_layers=4)
        results = {}
        for attn, ffn in (("sp", "ep"), ("sp", "tp"), ("tp", "ep"),
                          ("tp", "tp")):
            system = SystemPerfModel(
                name=f"{attn}+{ffn}", overlap=OverlapConfig.none(),
                mem_eff=0.8, grad_elem_bytes=4.0)
            br = system.iteration(
                model, ParallelConfig(8, attn, ffn),
                TrainConfig(global_batch_size=32), H800)
            results[(attn, ffn)] = br.mfu(model, H800)
        assert results[("sp", "ep")] == max(results.values())
        assert results[("tp", "tp")] == min(results.values())

    def test_fig13_gain_band(self):
        """SP+EP vs TP+TP MFU gain falls in a 10–45% band across the
        zoo (paper: 14.9–32.9%)."""
        for name in ("internal-352b", "mixtral-8x7b", "mixtral-8x22b",
                     "hunyuan-large", "phi-3.5-moe", "deepseekmoe"):
            model = MODEL_ZOO[name].scaled(n_layers=4)
            gains = {}
            for attn, ffn in (("sp", "ep"), ("tp", "tp")):
                system = SystemPerfModel(
                    name="x", overlap=OverlapConfig.none(), mem_eff=0.8,
                    grad_elem_bytes=4.0)
                br = system.iteration(
                    model, ParallelConfig(8, attn, ffn),
                    TrainConfig(global_batch_size=32), H800)
                gains[(attn, ffn)] = br.mfu(model, H800)
            gain = gains[("sp", "ep")] / gains[("tp", "tp")] - 1
            assert 0.10 < gain < 0.45, (name, gain)

    def test_intra_op_overlap_iteration_gain(self):
        """Fig. 15's right panel: intra-operator overlap shaves ~5–15%
        off iteration time (paper: 7.1–12.9%)."""
        mix = MODEL_ZOO["mixtral-8x7b"]
        full = MegaScalePerfModel().iteration(
            mix, ParallelConfig.megascale(8, 1, 4),
            TrainConfig(global_batch_size=32), H800)
        inter_only = MegaScalePerfModel(
            overlap=OverlapConfig(inter_op=True, intra_op=False)
        ).iteration(mix, ParallelConfig.megascale(8, 1, 4),
                    TrainConfig(global_batch_size=32), H800)
        gain = 1 - full.iteration_time / inter_only.iteration_time
        assert 0.02 < gain < 0.20

    def test_batch_divisibility_validated(self):
        with pytest.raises(ValueError, match="not divisible"):
            MegaScalePerfModel().iteration(
                MODEL352, ParallelConfig.megascale(8, 15, 7),
                TrainConfig(global_batch_size=720), H800)

    def test_breakdown_fractions_sum_sensibly(self):
        br = self.iteration(MegaScalePerfModel(), MODEL352,
                            ParallelConfig.megascale(8, 15, 4))
        parts = (br.attn_time + br.gemm_time + br.memory_op_time
                 + br.exposed_comm_time + br.bubble_time
                 + br.dp_exposed_time + br.optimizer_time)
        # Components approximately account for the iteration (overlap
        # means compute categories can exceed the wall clock slightly).
        assert 0.7 < parts / br.iteration_time < 1.3

    def test_full_recompute_slows_backward(self):
        base = MegatronPerfModel(full_recompute=False)
        recompute = MegatronPerfModel(full_recompute=True)
        t0 = self.iteration(base, MODEL352,
                            ParallelConfig.megatron(8, 15, 4))
        t1 = self.iteration(recompute, MODEL352,
                            ParallelConfig.megatron(8, 15, 4))
        assert t1.iteration_time > t0.iteration_time * 1.2
