"""Property-based tests for the discrete-event simulator.

Random task DAGs with random stream assignments must always satisfy the
scheduling invariants: no task starts before its dependencies finish,
streams never overlap themselves, and the makespan is bounded below by
both the critical path and the busiest stream.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimTask, simulate


@st.composite
def random_dag(draw):
    n = draw(st.integers(1, 24))
    n_streams = draw(st.integers(1, 4))
    rng = np.random.default_rng(draw(st.integers(0, 10 ** 6)))
    tasks = []
    for i in range(n):
        # Dependencies only on earlier tasks: guaranteed acyclic.
        n_deps = int(rng.integers(0, min(i, 3) + 1))
        deps = tuple(f"t{j}" for j in
                     rng.choice(i, n_deps, replace=False)) if i else ()
        tasks.append(SimTask(
            name=f"t{i}",
            duration=float(rng.uniform(0.1, 2.0)),
            stream=f"s{int(rng.integers(0, n_streams))}",
            deps=deps,
            is_comm=bool(rng.integers(0, 2)),
        ))
    return tasks


def critical_path(tasks):
    finish = {}
    for t in tasks:  # tasks are in topological order by construction
        start = max((finish[d] for d in t.deps), default=0.0)
        finish[t.name] = start + t.duration
    return max(finish.values(), default=0.0)


class TestSimulatorProperties:
    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_dependencies_respected(self, tasks):
        tl = simulate(tasks)
        finish = {r.task.name: r.end for r in tl.records}
        start = {r.task.name: r.start for r in tl.records}
        for t in tasks:
            for dep in t.deps:
                assert start[t.name] >= finish[dep] - 1e-12

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_streams_serialize(self, tasks):
        tl = simulate(tasks)
        by_stream = {}
        for r in tl.records:
            by_stream.setdefault(r.task.stream, []).append(r)
        for records in by_stream.values():
            records.sort(key=lambda r: r.start)
            for a, b in zip(records, records[1:]):
                assert b.start >= a.end - 1e-12

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_makespan_lower_bounds(self, tasks):
        tl = simulate(tasks)
        assert tl.makespan >= critical_path(tasks) - 1e-9
        stream_busy = {}
        for t in tasks:
            stream_busy[t.stream] = stream_busy.get(t.stream, 0.0) \
                + t.duration
        assert tl.makespan >= max(stream_busy.values()) - 1e-9

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_makespan_upper_bound_serial(self, tasks):
        """Never slower than running everything back to back."""
        tl = simulate(tasks)
        assert tl.makespan <= sum(t.duration for t in tasks) + 1e-9

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_exposed_comm_bounds(self, tasks):
        tl = simulate(tasks)
        total_comm = sum(t.duration for t in tasks if t.is_comm)
        assert -1e-9 <= tl.exposed_comm <= tl.makespan + 1e-9
        # Exposed communication can't exceed total communication unless
        # there are dependency stalls with no compute at all; bound by
        # makespan minus compute union is already checked by definition.
        if all(not t.is_comm for t in tasks):
            assert tl.exposed_comm == pytest.approx(0.0, abs=1e-9)

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_every_task_recorded_once(self, tasks):
        tl = simulate(tasks)
        names = [r.task.name for r in tl.records]
        assert sorted(names) == sorted(t.name for t in tasks)
