"""Robustness and determinism tests across the stack."""

import numpy as np
import pytest

from repro.comm import World, hierarchical_sync
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW


class TestDeterminism:
    def make_trainer(self):
        cfg = ModelConfig("det", 2, 32, 8, 2, 48, 8, 2, vocab_size=64,
                          seq_len=16)
        model = MoETransformer(cfg, seed=0, dtype=np.float64)
        train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                            seq_len=16, learning_rate=1e-2,
                            aux_loss_coeff=0.01)
        return MegaScaleTrainer(
            model, World(4, 4), ParallelConfig.megascale(4), train,
            optimizer=AdamW(model.parameters(), lr=1e-2))

    def test_trainer_fully_deterministic(self):
        corpus = MarkovCorpus(vocab_size=64, seed=0)
        batches = list(batch_iterator(corpus, 4, 16, seed=1, limit=4))
        runs = []
        for _ in range(2):
            trainer = self.make_trainer()
            runs.append([trainer.train_step(b).loss for b in batches])
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_routing_deterministic_under_ties(self):
        """Equal logits must route identically every time (stable
        argsort) — nondeterministic ties would break cross-rank
        agreement."""
        from repro.model.moe import TopKRouter
        from repro.tensor import Tensor
        rng = np.random.default_rng(0)
        router = TopKRouter(rng, 8, 4, 2, dtype=np.float64)
        router.gate.weight.data[:] = 0.0  # all logits identical
        x = Tensor(rng.standard_normal((16, 8)))
        first, _, _ = router(x)
        second, _, _ = router(x)
        np.testing.assert_array_equal(first.expert_index,
                                      second.expert_index)


class TestHierarchicalFallbacks:
    def test_indivisible_inter_shard(self, rng):
        """When the P/n shard doesn't divide by d, the inter-node phase
        falls back to a direct sum with equivalent ledger volume."""
        world = World(6, ranks_per_node=2)  # n=2, d=3; pick awkward numel
        grads = [rng.standard_normal(10) for _ in range(6)]
        outs = hierarchical_sync(world, grads)
        for out in outs:
            np.testing.assert_allclose(out, np.sum(grads, axis=0),
                                       rtol=1e-12)
        assert any("inter_fallback" in r.tag
                   for r in world.ledger.records)


class TestTrainingWithDropping:
    def test_ep_trainer_converges_with_capacity(self):
        """Distributed EP training with rank-local token dropping is not
        reference-identical (capacity is enforced per rank), but it must
        converge and respect the capacity bound."""
        cfg = ModelConfig("cap", 2, 32, 8, 2, 48, 8, 2, vocab_size=64,
                          seq_len=16)
        model = MoETransformer(cfg, seed=0, capacity_factor=1.5,
                               experts_per_group=2, dtype=np.float64)
        train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                            seq_len=16, learning_rate=3e-3,
                            aux_loss_coeff=0.01, capacity_factor=1.5)
        trainer = MegaScaleTrainer(
            model, World(4, 4), ParallelConfig.megascale(4), train,
            optimizer=AdamW(model.parameters(), lr=3e-3))
        corpus = MarkovCorpus(vocab_size=64, seed=1)
        losses = [trainer.train_step(b).lm_loss
                  for b in batch_iterator(corpus, 4, 16, seed=2,
                                          limit=8)]
        assert np.isfinite(losses).all()
        assert losses[-1] < losses[0]


class TestDeepStack:
    def test_deeper_model_wide_world_equivalence(self):
        """8 ranks × 4 layers: the equivalence holds at depth, not just
        in the 2-layer smoke configurations."""
        cfg = ModelConfig("deep", 4, 32, 8, 1, 48, 8, 2, vocab_size=32,
                          seq_len=16)
        corpus = MarkovCorpus(vocab_size=32, seed=3)
        batch = next(batch_iterator(corpus, 2, 16, seed=4))

        ref = MoETransformer(cfg, seed=0, dtype=np.float64)
        ref_loss = ref.language_model_loss(batch, aux_coeff=0.01)
        ref_loss.backward()
        ref_value = ref_loss.item()

        model = MoETransformer(cfg, seed=0, dtype=np.float64)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=16, aux_loss_coeff=0.01)
        trainer = MegaScaleTrainer(
            model, World(8, 8), ParallelConfig.megascale(8), train)
        total, lm, aux = trainer.loss(batch)
        assert total.item() == pytest.approx(ref_value, abs=1e-10)
        total.backward()
        for (name, a), (_, b) in zip(ref.named_parameters(),
                                     model.named_parameters()):
            if a.grad is None:
                assert b.grad is None, name
            else:
                np.testing.assert_allclose(b.grad, a.grad, atol=1e-9,
                                           err_msg=name)
