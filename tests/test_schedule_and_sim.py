"""Tests for the event simulator and the holistic scheduler (§4)."""

import pytest

from repro.core.config import MODEL_ZOO, ParallelConfig
from repro.core.operators import build_backward_graph, build_forward_graph
from repro.core.schedule import (
    FUSION_FILL_DRAIN,
    FusedKernel,
    HolisticScheduler,
    OverlapConfig,
)
from repro.perf.estimator import KernelModel
from repro.core.config import GPU_SPECS
from repro.sim.engine import SimTask, simulate

MODEL = MODEL_ZOO["mixtral-8x7b"]
GPU = GPU_SPECS["h800"]


class TestSimulator:
    def test_sequential_chain(self):
        tasks = [
            SimTask("a", 1.0, "s"),
            SimTask("b", 2.0, "s", deps=("a",)),
        ]
        tl = simulate(tasks)
        assert tl.makespan == 3.0
        assert tl.record_of("b").start == 1.0

    def test_parallel_streams_overlap(self):
        tasks = [
            SimTask("compute", 3.0, "compute"),
            SimTask("comm", 2.0, "comm", is_comm=True),
        ]
        tl = simulate(tasks)
        assert tl.makespan == 3.0
        assert tl.exposed_comm == 0.0

    def test_exposed_comm_counts_uncovered_time(self):
        tasks = [
            SimTask("comm", 2.0, "comm", is_comm=True),
            SimTask("compute", 3.0, "compute", deps=("comm",)),
        ]
        tl = simulate(tasks)
        assert tl.makespan == 5.0
        assert tl.exposed_comm == 2.0

    def test_exposed_comm_unions_compute_streams(self):
        tasks = [
            SimTask("c1", 2.0, "s1"),
            SimTask("c2", 2.0, "s2"),  # overlaps c1 entirely
            SimTask("comm", 1.0, "comm", is_comm=True, deps=("c1", "c2")),
        ]
        tl = simulate(tasks)
        assert tl.exposed_comm == pytest.approx(1.0)

    def test_stream_in_order_blocking(self):
        """A ready task queued behind a blocked one must wait — CUDA
        stream semantics."""
        tasks = [
            SimTask("slow", 5.0, "other"),
            SimTask("blocked", 1.0, "s", deps=("slow",)),
            SimTask("ready", 1.0, "s"),  # queued after 'blocked'
        ]
        tl = simulate(tasks)
        assert tl.record_of("ready").start == 6.0

    def test_deadlock_detection(self):
        tasks = [
            SimTask("a", 1.0, "s1", deps=("b",)),
            SimTask("b", 1.0, "s2", deps=("a",)),
        ]
        with pytest.raises(ValueError, match="deadlock"):
            simulate(tasks)

    def test_unknown_dep(self):
        with pytest.raises(ValueError, match="unknown task"):
            simulate([SimTask("a", 1.0, "s", deps=("ghost",))])

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            simulate([SimTask("a", 1.0, "s"), SimTask("a", 1.0, "t")])

    def test_negative_duration(self):
        with pytest.raises(ValueError, match="negative"):
            SimTask("a", -1.0, "s")

    def test_busy_time_filters(self):
        tasks = [
            SimTask("x", 2.0, "compute"),
            SimTask("y", 3.0, "comm", is_comm=True),
        ]
        tl = simulate(tasks)
        assert tl.compute_time == 2.0
        assert tl.comm_time == 3.0
        assert tl.busy_time(stream="comm") == 3.0


class TestFusedKernel:
    def test_duration_max_plus_fill_drain(self):
        k = FusedKernel("f", [], comm_time=2.0, compute_time=5.0)
        assert k.duration == pytest.approx(5.0 + FUSION_FILL_DRAIN * 2.0)
        assert k.sequential_duration == 7.0

    def test_fusion_always_wins_when_balanced(self):
        k = FusedKernel("f", [], comm_time=3.0, compute_time=3.0)
        assert k.duration < k.sequential_duration


class TestHolisticScheduler:
    def durations(self, graph):
        return KernelModel(GPU).durations(graph)

    def makespan(self, graph, overlap):
        sched = HolisticScheduler(overlap)
        return simulate(sched.schedule(graph, self.durations(graph)))

    @pytest.mark.parametrize("parallel", [
        ParallelConfig.megascale(8, ep_dispatch="a2a"),
        ParallelConfig.megascale(8, ep_dispatch="ag_rs"),
        ParallelConfig.megatron(8),
    ], ids=lambda p: f"{p.strategy_name}-{p.ep_dispatch}")
    def test_overlap_strictly_ordered(self, parallel):
        """makespan(full) <= makespan(inter-only) <= makespan(none) for
        both passes — the §4 hierarchy of optimizations."""
        for build in (build_forward_graph,
                      lambda *a, **kw: build_backward_graph(*a, **kw)):
            graph = build(MODEL, parallel, 1)
            none = self.makespan(graph, OverlapConfig.none()).makespan
            inter = self.makespan(
                graph, OverlapConfig(inter_op=True,
                                     intra_op=False)).makespan
            full = self.makespan(graph, OverlapConfig.full()).makespan
            assert full <= inter * (1 + 1e-9)
            assert inter <= none * (1 + 1e-9)

    def test_no_overlap_equals_sum_of_durations(self):
        graph = build_forward_graph(MODEL, ParallelConfig.megascale(8), 1)
        durations = self.durations(graph)
        tl = self.makespan(graph, OverlapConfig.none())
        assert tl.makespan == pytest.approx(sum(durations.values()))

    def test_full_overlap_hides_most_comm(self):
        """With intra-op fusion the exposed communication of a MegaScale
        forward layer approaches zero (§4.2)."""
        graph = build_forward_graph(
            MODEL, ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1)
        tl = self.makespan(graph, OverlapConfig.full())
        none = self.makespan(graph, OverlapConfig.none())
        comm_total = sum(self.durations(graph)[op.name]
                         for op in graph.comm_ops())
        assert tl.exposed_comm < 0.2 * comm_total

    def test_megatron_exposes_all_comm(self):
        graph = build_forward_graph(MODEL, ParallelConfig.megatron(8), 1)
        tl = self.makespan(graph, OverlapConfig.none())
        comm_total = sum(self.durations(graph)[op.name]
                         for op in graph.comm_ops())
        assert tl.exposed_comm == pytest.approx(comm_total, rel=1e-6)

    def test_remat_hidden_under_communication(self):
        """Backward with selective remat costs at most a few percent
        more than without, despite re-running ops (§4.1, Fig. 16)."""
        pc = ParallelConfig.megascale(8, ep_dispatch="ag_rs")
        with_remat = build_backward_graph(MODEL, pc, 1,
                                          selective_remat=True)
        without = build_backward_graph(MODEL, pc, 1,
                                       selective_remat=False)
        t_with = self.makespan(with_remat, OverlapConfig.full()).makespan
        t_without = self.makespan(without, OverlapConfig.full()).makespan
        assert t_with <= t_without * 1.05

    def test_missing_duration_rejected(self):
        graph = build_forward_graph(MODEL, ParallelConfig.megascale(8), 1)
        sched = HolisticScheduler(OverlapConfig.full())
        with pytest.raises(KeyError, match="no duration"):
            sched.schedule(graph, {})

    def test_fused_units_replace_members(self):
        graph = build_forward_graph(
            MODEL, ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1)
        sched = HolisticScheduler(OverlapConfig.full())
        tasks = sched.schedule(graph, self.durations(graph))
        names = {t.name for t in tasks}
        assert any(n.startswith("fused:") for n in names)
        assert "ffn_ag" not in names  # absorbed into the fused kernel

    def test_schedule_is_simulatable_for_all_strategies(self):
        for parallel in (ParallelConfig.megascale(8),
                         ParallelConfig.megatron(8),
                         ParallelConfig(8, "sp", "tp"),
                         ParallelConfig(8, "tp", "ep")):
            for remat in (True, False):
                graph = build_backward_graph(MODEL, parallel, 1,
                                             selective_remat=remat)
                tl = self.makespan(graph, OverlapConfig.full())
                assert tl.makespan > 0
