"""Tests for the SPMD thread-per-rank execution engine.

The determinism contract (docs/INTERNALS.md §8): for any supported
configuration, ``execution="threaded"`` produces bitwise-identical
losses, gradients, parameters, and ledger byte totals to the classic
sequential rank loops — including under a (passive) injected slow-link
fault plan, which also disables the zero-copy collective fast paths.
"""

import os

import numpy as np
import pytest

from repro.comm import World
from repro.comm.rendezvous import Rendezvous, SpmdAbort
from repro.core.analysis import sp_attention_comm_volume
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.trainer import MegaScaleTrainer
from repro.ft import FaultPlan
from repro.model import MoETransformer
from repro.model.layers import SelfAttention
from repro.parallel.hybrid2d import Hybrid2DTrainer
from repro.parallel.pp_engine import PipelineParallelTrainer
from repro.parallel.sp_attention import SPAttentionEngine
from repro.precision.optimizer import AdamW
from repro.runtime import (
    SpmdExecutor,
    current_rank,
    make_executor,
    parallel_backward,
    resolve_execution,
)
from repro.tensor import Tensor

CONFIG = ModelConfig("spmd", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                     top_k=2, vocab_size=64, seq_len=16)


def make_train(execution, **kw):
    return TrainConfig(global_batch_size=2, micro_batch_size=2,
                       seq_len=16, learning_rate=1e-2,
                       aux_loss_coeff=0.01, execution=execution, **kw)


def slow_link_plan():
    """A passive fault plan: rank 1's link is 3x slow, nothing fires."""
    return FaultPlan(slow_ranks={1: 3.0})


# -- executor mechanics -------------------------------------------------------


class TestExecutorMechanics:
    def test_run_returns_rank_order(self, world4):
        ex = SpmdExecutor()
        outs = ex.run(world4.full_group(), lambda comm: comm.rank * 10)
        assert outs == [0, 10, 20, 30]

    def test_current_rank_inside_and_outside(self, world4):
        ex = SpmdExecutor()
        assert current_rank() is None
        seen = ex.run(world4.full_group(), lambda comm: current_rank())
        assert seen == [0, 1, 2, 3]
        assert current_rank() is None

    def test_gossip_shares_metadata(self, world4):
        ex = SpmdExecutor()
        outs = ex.run(world4.full_group(),
                      lambda comm: comm.gossip("meta", comm.rank + 100))
        for out in outs:
            assert out == [100, 101, 102, 103]

    def test_failing_rank_propagates_and_aborts_peers(self, world4):
        ex = SpmdExecutor()

        def rank_fn(comm):
            if comm.rank == 2:
                raise RuntimeError("rank 2 died")
            # Peers block at a rendezvous; the abort unwinds them.
            return comm.gossip("x", comm.rank)

        with pytest.raises(RuntimeError, match="rank 2 died"):
            ex.run(world4.full_group(), rank_fn)

    def test_collective_label_mismatch_detected(self, world4):
        ex = SpmdExecutor()

        def rank_fn(comm):
            label = "a" if comm.rank == 0 else "b"
            return comm.exchange(label, comm.rank, list)

        with pytest.raises(RuntimeError, match="collective mismatch"):
            ex.run(world4.full_group(), rank_fn)

    def test_map_preserves_order_and_propagates(self):
        ex = SpmdExecutor(parallelism=2)
        assert ex.map(lambda x: x * x, range(5)) == [0, 1, 4, 9, 16]

        def boom(x):
            if x == 3:
                raise ValueError("item 3")
            return x

        with pytest.raises(ValueError, match="item 3"):
            ex.map(boom, range(5))

    def test_rendezvous_abort_raises_spmd_abort(self):
        rdv = Rendezvous(2)
        rdv.abort()
        with pytest.raises(SpmdAbort):
            rdv.exchange(0, "x", 1, list)

    def test_parallelism_validation(self):
        with pytest.raises(ValueError, match="parallelism"):
            SpmdExecutor(parallelism=0)


class TestExecutionKnob:
    def test_resolve_priority(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTION", raising=False)
        assert resolve_execution() == "sequential"
        monkeypatch.setenv("REPRO_EXECUTION", "threaded")
        assert resolve_execution() == "threaded"
        assert resolve_execution("sequential") == "sequential"

    def test_resolve_rejects_unknown(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTION", raising=False)
        with pytest.raises(ValueError, match="unknown execution mode"):
            resolve_execution("warp")

    def test_make_executor(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTION", raising=False)
        assert make_executor("sequential") is None
        assert isinstance(make_executor("threaded"), SpmdExecutor)

    def test_train_config_validates(self):
        with pytest.raises(ValueError, match="execution"):
            TrainConfig(execution="warp")


# -- parallel backward --------------------------------------------------------


class TestParallelBackward:
    def test_bitwise_matches_sequential(self, rng):
        def build():
            a = Tensor(rng_fixed(0, (4, 3)), requires_grad=True)
            b = Tensor(rng_fixed(1, (3, 5)), requires_grad=True)
            c = (a @ b).relu()
            d = (c * c).sum() + c.sum()
            return a, b, d

        a1, b1, d1 = build()
        d1.backward()
        a2, b2, d2 = build()
        parallel_backward(d2, workers=4)
        np.testing.assert_array_equal(a1.grad, a2.grad)
        np.testing.assert_array_equal(b1.grad, b2.grad)

    def test_requires_scalar_root(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = t * 2.0
        with pytest.raises(RuntimeError, match="scalar output"):
            parallel_backward(out)

    def test_non_grad_tensor_rejected(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError, match="non-grad tensor"):
            parallel_backward(t)


def rng_fixed(seed, shape):
    return np.random.default_rng(seed).standard_normal(shape)


# -- end-to-end bitwise identity ---------------------------------------------


def run_trainer(execution, ep_mode, plan=None, steps=2, **train_kw):
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    world = World(4, ranks_per_node=4)
    if plan is not None:
        world.attach_fault_plan(plan)
    parallel = ParallelConfig(model_parallel_size=4, attention="sp",
                              ffn="ep", ep_dispatch=ep_mode)
    trainer = MegaScaleTrainer(model, world, parallel,
                               make_train(execution, **train_kw))
    rng = np.random.default_rng(7)
    results = []
    for _ in range(steps):
        tokens = rng.integers(0, CONFIG.vocab_size, size=(2, 17))
        r = trainer.train_step(tokens)
        results.append((r.loss, r.lm_loss, r.aux_loss, r.grad_norm))
    params = {name: p.data.copy()
              for name, p in model.named_parameters()}
    return results, params, world.ledger


class TestBitwiseIdentity:
    @pytest.mark.parametrize("ep_mode", ["a2a", "ag_rs"])
    def test_sp_ep_trainer(self, ep_mode):
        seq, p_seq, led_seq = run_trainer("sequential", ep_mode)
        thr, p_thr, led_thr = run_trainer("threaded", ep_mode)
        assert seq == thr  # float-exact equality, per-step
        for name in p_seq:
            np.testing.assert_array_equal(p_seq[name], p_thr[name],
                                          err_msg=name)
        assert led_seq.total_bytes() == led_thr.total_bytes()
        assert led_seq.counts() == led_thr.counts()

    @pytest.mark.parametrize("ep_mode", ["a2a", "ag_rs"])
    def test_sp_ep_trainer_with_slow_link_plan(self, ep_mode):
        """The fault plan disables zero-copy; identity must still hold,
        and the plan must see the same number of collective calls."""
        seq, p_seq, led_seq = run_trainer("sequential", ep_mode,
                                          plan=slow_link_plan(), steps=1)
        thr, p_thr, led_thr = run_trainer("threaded", ep_mode,
                                          plan=slow_link_plan(), steps=1)
        assert seq == thr
        for name in p_seq:
            np.testing.assert_array_equal(p_seq[name], p_thr[name],
                                          err_msg=name)
        assert led_seq.total_bytes() == led_thr.total_bytes()

    @pytest.mark.parametrize("ep_mode", ["a2a", "ag_rs"])
    def test_sp_ep_trainer_with_dropout(self, ep_mode):
        """Per-rank RNG streams make each dropout mask a pure function
        of (dropout_seed, rank): thread interleaving cannot perturb
        another rank's stream, so identity holds with dropout on."""
        seq, p_seq, led_seq = run_trainer("sequential", ep_mode,
                                          dropout=0.2, dropout_seed=11)
        thr, p_thr, led_thr = run_trainer("threaded", ep_mode,
                                          dropout=0.2, dropout_seed=11)
        assert seq == thr
        for name in p_seq:
            np.testing.assert_array_equal(p_seq[name], p_thr[name],
                                          err_msg=name)
        assert led_seq.total_bytes() == led_thr.total_bytes()
        assert led_seq.counts() == led_thr.counts()
        # ... and dropout genuinely participated in the math.
        base, _, _ = run_trainer("sequential", ep_mode)
        assert seq != base

    def test_dropout_seed_changes_masks(self):
        a, _, _ = run_trainer("sequential", "a2a", steps=1,
                              dropout=0.2, dropout_seed=11)
        b, _, _ = run_trainer("sequential", "a2a", steps=1,
                              dropout=0.2, dropout_seed=12)
        assert a != b

    def test_plan_sees_identical_call_count(self):
        plan_seq, plan_thr = slow_link_plan(), slow_link_plan()
        run_trainer("sequential", "a2a", plan=plan_seq, steps=1)
        run_trainer("threaded", "a2a", plan=plan_thr, steps=1)
        assert plan_seq.calls == plan_thr.calls > 0

    def test_hybrid2d(self):
        def run(execution):
            world = World(8, ranks_per_node=4)
            h2d = Hybrid2DTrainer(CONFIG, world,
                                  ParallelConfig.megascale(4),
                                  make_train(execution), seed=0)
            rng = np.random.default_rng(5)
            batches = [rng.integers(0, CONFIG.vocab_size, size=(2, 17))
                       for _ in range(2)]
            result = h2d.train_step(batches)
            params = h2d.replicas[0].state_dict()
            return result, params, world.ledger.total_bytes()

        r_seq, p_seq, b_seq = run("sequential")
        r_thr, p_thr, b_thr = run("threaded")
        assert r_seq.replica_losses == r_thr.replica_losses
        assert r_seq.grad_norm == r_thr.grad_norm
        for name in p_seq:
            np.testing.assert_array_equal(p_seq[name], p_thr[name],
                                          err_msg=name)
        assert b_seq == b_thr

    def test_pipeline_parallel(self, rng):
        pp_config = ModelConfig("spmd_pp", n_layers=4, hidden_size=16,
                                n_heads=4, gqa_ratio=2,
                                ffn_hidden_size=24, n_experts=4,
                                top_k=2, vocab_size=32, seq_len=8)
        batch = rng.integers(0, 32, (4, 9))

        def run(execution):
            model = MoETransformer(pp_config, seed=0, dtype=np.float64)
            trainer = PipelineParallelTrainer(
                model, World(2, 1), 2,
                optimizer=AdamW(model.parameters(), lr=1e-2),
                aux_loss_coeff=0.01,
                mp_world=World(2, 2), mp_attention="sp", mp_ffn="ep",
                execution=execution)
            result = trainer.train_step(batch)
            params = {n: p.data.copy()
                      for n, p in model.named_parameters()}
            return result, params

        r_seq, p_seq = run(None)
        r_thr, p_thr = run("threaded")
        assert r_seq.loss == r_thr.loss
        assert r_seq.micro_losses == r_thr.micro_losses
        assert r_seq.grad_norm == r_thr.grad_norm
        assert r_seq.p2p_bytes == r_thr.p2p_bytes
        for name in p_seq:
            np.testing.assert_array_equal(p_seq[name], p_thr[name],
                                          err_msg=name)


# -- zero-copy byte accounting -------------------------------------------------


class TestZeroCopyLedgerAudit:
    """Zero-copy delivery must not change what the ledger models: the
    wire bytes of the Eq. 1-4 audit, with or without a fault plan (the
    plan forces the private-copy path), in either execution mode."""

    def eq2_measured(self, executor=None, plan=None):
        rng = np.random.default_rng(0)
        b, s, h, nh, m, n = 2, 8, 16, 8, 2, 4
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        world = World(n, n)
        if plan is not None:
            world.attach_fault_plan(plan)
        engine = SPAttentionEngine(world.full_group(), attn)
        shards = [Tensor(rng.standard_normal((b, s // n, h)),
                         requires_grad=True) for _ in range(n)]
        world.ledger.clear()
        engine.forward(shards, s, executor=executor)
        measured = sum(
            r.total_bytes for r in world.ledger.records
            if r.tag.startswith("sp_attn") and not r.tag.endswith(":bwd")
        ) / 8.0
        formula = sp_attention_comm_volume(b, s, h, n, m) * n
        return measured, formula

    def test_eq2_zero_copy_path(self):
        measured, formula = self.eq2_measured()
        assert measured == pytest.approx(formula / 2.0)

    def test_eq2_private_copy_path_identical(self):
        fast, _ = self.eq2_measured()
        slow, formula = self.eq2_measured(plan=slow_link_plan())
        assert fast == slow == pytest.approx(formula / 2.0)

    def test_eq2_threaded_identical(self):
        seq, _ = self.eq2_measured()
        thr, _ = self.eq2_measured(executor=SpmdExecutor())
        assert seq == thr

    @pytest.mark.parametrize("ep_mode", ["a2a", "ag_rs"])
    def test_ep_bytes_plan_independent(self, ep_mode):
        """Eq. 3/4 FFN volumes: the zero-copy fast path (no plan) and
        the private-copy path (plan attached) record identical bytes."""
        _, _, led_fast = run_trainer("sequential", ep_mode, steps=1)
        _, _, led_slow = run_trainer("sequential", ep_mode,
                                     plan=slow_link_plan(), steps=1)
        for op in ("all_gather", "reduce_scatter", "all_to_all"):
            assert led_fast.total_bytes(op=op) == \
                led_slow.total_bytes(op=op), op
        assert led_fast.counts() == led_slow.counts()


# -- observability under threads -----------------------------------------------


class TestThreadedObservability:
    def test_spans_attributed_to_ranks_and_rank_lanes(self, world4):
        from repro.obs import Observability
        from repro.obs.export import to_chrome_trace

        obs = Observability()
        world4.attach_tracer(obs.tracer)
        ex = SpmdExecutor()

        def rank_fn(comm):
            return comm.all_reduce(Tensor(np.ones(4)), tag="t")

        with obs.tracer.span("forward", cat="train"):
            ex.run(world4.full_group(), rank_fn)
        comm_spans = obs.tracer.closed_spans(cat="comm")
        assert len(comm_spans) == 1  # one span per collective, not per rank
        trace = to_chrome_trace(obs.tracer.spans, rank_lanes=True)
        tids = {e["tid"] for e in trace["traceEvents"]}
        assert any(":r" in str(t) for t in tids)

    def test_counter_shards_fold_across_threads(self):
        from repro.obs.metrics import Counter
        counter = Counter()
        ex = SpmdExecutor()
        ex.map(lambda _: [counter.inc(1.0) for _ in range(100)],
               range(8))
        assert counter.value == 800.0


REPRO_EXECUTION_SET = os.environ.get("REPRO_EXECUTION") == "threaded"


class TestEnvKnobEndToEnd:
    def test_env_var_drives_trainer(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION", "threaded")
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        world = World(4, ranks_per_node=4)
        trainer = MegaScaleTrainer(
            model, world, ParallelConfig(model_parallel_size=4),
            make_train(None))
        assert isinstance(trainer.executor, SpmdExecutor)
