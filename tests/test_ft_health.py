"""Tests for health monitoring (repro.ft.health)."""

import math

import numpy as np
import pytest

from repro.comm import World, all_reduce
from repro.ft import (
    FaultPlan,
    HealthMonitor,
    LossSpike,
    LossSpikeGuard,
    NumericFault,
    NumericGuard,
    StragglerDetector,
)


class TestStragglerDetector:
    def test_flags_2x_slow_rank_within_one_window(self):
        det = StragglerDetector(window=8, z_threshold=1.5)
        for i in range(8):
            durations = [1.0, 1.0, 2.0, 1.0]  # rank 2 is 2x slow
            det.observe([0, 1, 2, 3], durations)
            if i < 7:
                assert det.flagged() == []  # window not yet full
        assert det.flagged() == [2]

    def test_uniform_ranks_never_flagged(self):
        det = StragglerDetector(window=4)
        for _ in range(10):
            det.observe([0, 1, 2, 3], [1.0, 1.0, 1.0, 1.0])
        assert det.flagged() == []

    def test_mild_variation_below_rel_threshold(self):
        det = StragglerDetector(window=4, rel_threshold=1.25)
        for _ in range(10):
            det.observe([0, 1, 2, 3], [1.0, 1.0, 1.1, 1.0])
        assert det.flagged() == []

    def test_mixed_op_magnitudes_normalize(self):
        """Relative durations make microsecond all-gathers comparable
        with millisecond all-to-alls."""
        det = StragglerDetector(window=6, z_threshold=1.5)
        for i in range(6):
            scale = 10.0 ** (i % 3)  # wildly varying op sizes
            det.observe([0, 1, 2, 3],
                        [scale, scale, 2.0 * scale, scale])
        assert det.flagged() == [2]

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            StragglerDetector(window=1)
        det = StragglerDetector()
        with pytest.raises(ValueError, match="durations"):
            det.observe([0, 1], [1.0])

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -1.0])
    def test_non_finite_observation_dropped(self, bad):
        """One NaN/inf/negative sample must not blind the detector:
        the poisoned observation is dropped and detection continues."""
        det = StragglerDetector(window=8, z_threshold=1.5)
        det.observe([0, 1, 2, 3], [1.0, 1.0, bad, 1.0])
        for _ in range(8):
            det.observe([0, 1, 2, 3], [1.0, 1.0, 2.0, 1.0])
        assert det.flagged() == [2]

    def test_zero_mean_observation_dropped(self):
        det = StragglerDetector(window=4)
        det.observe([0, 1, 2, 3], [0.0, 0.0, 0.0, 0.0])
        for _ in range(4):
            det.observe([0, 1, 2, 3], [1.0, 1.0, 1.0, 1.0])
        assert det.flagged() == []

    def test_zero_variance_window_never_divides_by_zero(self):
        det = StragglerDetector(window=2)
        for _ in range(2):
            det.observe([0, 1], [1.0, 1.0])
        assert det.flagged() == []  # identical means, std == 0


class TestNumericGuard:
    def test_finite_passes(self):
        NumericGuard().check(1.25)

    def test_nan_and_inf_raise(self):
        guard = NumericGuard()
        with pytest.raises(NumericFault):
            guard.check(float("nan"))
        with pytest.raises(NumericFault):
            guard.check(float("inf"))

    def test_checks_grad_norm_attribute(self):
        class Result:
            loss = 1.0
            grad_norm = math.inf

        with pytest.raises(NumericFault, match="grad norm"):
            NumericGuard().check(Result())


class TestLossSpikeGuard:
    def test_spike_detected_against_rolling_median(self):
        guard = LossSpikeGuard(window=4, factor=2.0, min_history=3)
        for step, loss in enumerate([5.0, 4.8, 4.6]):
            guard.observe(step, loss)
        with pytest.raises(LossSpike):
            guard.observe(3, 12.0)

    def test_spiking_loss_not_added_to_history(self):
        guard = LossSpikeGuard(window=4, factor=2.0, min_history=2)
        guard.observe(0, 1.0)
        guard.observe(1, 1.0)
        with pytest.raises(LossSpike):
            guard.observe(2, 10.0)
        assert guard.rolling_median() == 1.0  # 10.0 was rejected

    def test_gradual_decrease_never_spikes(self):
        guard = LossSpikeGuard(window=8, factor=2.0)
        for step in range(50):
            guard.observe(step, 5.0 * 0.97 ** step)

    def test_nan_loss_is_numeric_fault(self):
        guard = LossSpikeGuard()
        with pytest.raises(NumericFault):
            guard.observe(0, float("nan"))

    def test_validation(self):
        with pytest.raises(ValueError, match="factor"):
            LossSpikeGuard(factor=1.0)
        with pytest.raises(ValueError, match="window"):
            LossSpikeGuard(window=0)


class TestHealthMonitorWiring:
    def test_collectives_feed_straggler_detector(self):
        """A world with a slow-link fault plan and a health monitor
        flags the slow rank purely from collective timings."""
        world = World(4, 4)
        world.attach_fault_plan(FaultPlan(slow_ranks={1: 2.0}))
        monitor = HealthMonitor(
            straggler=StragglerDetector(window=8, z_threshold=1.5))
        world.attach_health_monitor(monitor)
        group = world.full_group()
        tensors = [np.ones(16) for _ in range(4)]
        for _ in range(8):
            all_reduce(group, tensors)
        assert monitor.collectives_seen == 8
        assert monitor.flagged_stragglers() == [1]

    def test_trainer_attaches_monitor_and_checks_steps(self):
        from repro.core.config import (ModelConfig, ParallelConfig,
                                       TrainConfig)
        from repro.core.trainer import MegaScaleTrainer
        from repro.data import MarkovCorpus, batch_iterator
        from repro.model import MoETransformer
        from repro.precision.optimizer import AdamW

        cfg = ModelConfig("health", 1, 16, 4, 2, 24, 4, 2,
                          vocab_size=32, seq_len=8)
        model = MoETransformer(cfg, seed=0, dtype=np.float64)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=8, learning_rate=5e-3,
                            aux_loss_coeff=0.01)
        world = World(2, 2)
        monitor = HealthMonitor()
        trainer = MegaScaleTrainer(
            model, world, ParallelConfig.megascale(2), train,
            optimizer=AdamW(model.parameters(), lr=5e-3),
            health=monitor)
        assert world.health is monitor
        corpus = MarkovCorpus(vocab_size=32, seed=0)
        batch = next(iter(batch_iterator(corpus, 2, 8, seed=1,
                                         limit=1)))
        trainer.train_step(batch)
        assert monitor.collectives_seen > 0
        assert monitor.numeric.checked == 1
