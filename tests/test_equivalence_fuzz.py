"""Property-based fuzzing: every parallel configuration must match the
single-rank reference on randomly drawn model shapes.

This is the repository's strongest correctness property: for arbitrary
(valid) combinations of hidden size, head counts, GQA ratio, expert
count, top-k, rank count, strategy, and dispatch mode, the sharded
forward pass and all gradients coincide with the reference model.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import World
from repro.core.config import ModelConfig
from repro.model.transformer import TransformerBlock
from repro.parallel import ParallelBlockEngine, shard_sequence, \
    unshard_sequence
from repro.tensor import Tensor


def valid_configs():
    """Draw (config, n_ranks) pairs satisfying every divisibility rule."""

    @st.composite
    def config(draw):
        n = draw(st.sampled_from([2, 4]))
        gqa = draw(st.sampled_from([1, 2]))
        kv_heads = draw(st.sampled_from([1, 2])) * n
        heads = kv_heads * gqa
        head_dim = draw(st.sampled_from([2, 4]))
        hidden = heads * head_dim
        experts = draw(st.sampled_from([1, 2])) * n
        top_k = draw(st.integers(1, min(3, experts)))
        ffn = draw(st.sampled_from([1, 2, 3])) * n * 2
        seq = draw(st.sampled_from([1, 2])) * n * 2
        batch = draw(st.integers(1, 2))
        cfg = ModelConfig(
            "fuzz", n_layers=1, hidden_size=hidden, n_heads=heads,
            gqa_ratio=gqa, ffn_hidden_size=ffn, n_experts=experts,
            top_k=top_k, vocab_size=16, seq_len=seq)
        attn = draw(st.sampled_from(["sp", "tp"]))
        ffn_strategy = draw(st.sampled_from(["ep", "tp"]))
        ep_mode = draw(st.sampled_from(["a2a", "ag_rs"]))
        seed = draw(st.integers(0, 10 ** 6))
        return cfg, n, batch, attn, ffn_strategy, ep_mode, seed

    return config()


class TestParallelEquivalenceFuzz:
    @given(valid_configs())
    @settings(max_examples=30, deadline=None)
    def test_block_forward_and_gradients(self, case):
        cfg, n, batch, attn, ffn, ep_mode, seed = case
        rng = np.random.default_rng(seed)
        block = TransformerBlock(np.random.default_rng(seed + 1), cfg,
                                 dtype=np.float64)
        x = rng.standard_normal((batch, cfg.seq_len, cfg.hidden_size))

        # Reference.
        xt = Tensor(x, requires_grad=True)
        ref_hidden, ref_moe = block(xt)
        g = rng.standard_normal(ref_hidden.shape)
        scalar = (ref_hidden * Tensor(g)).sum() + ref_moe.aux_loss
        scalar.backward()
        ref_out = ref_hidden.data.copy()
        ref_dx = xt.grad.copy()
        ref_grads = {name: p.grad.copy()
                     for name, p in block.named_parameters()
                     if p.grad is not None}
        block.zero_grad()

        # Parallel.
        world = World(n, n)
        engine = ParallelBlockEngine(world.full_group(), block, attn,
                                     ffn, ep_mode)
        shards = shard_sequence(x, n, requires_grad=True)
        outs, aux = engine.forward(shards, cfg.seq_len)
        np.testing.assert_allclose(unshard_sequence(outs), ref_out,
                                   atol=1e-8)

        width = cfg.seq_len // n
        total = None
        for r, out in enumerate(outs):
            piece = (out * Tensor(
                g[:, r * width:(r + 1) * width])).sum()
            total = piece if total is None else total + piece
        total = total + aux
        total.backward()
        engine.sync_grads_to_reference()

        dx = np.concatenate([s.grad for s in shards], axis=1)
        np.testing.assert_allclose(dx, ref_dx, atol=1e-8)
        for name, expected in ref_grads.items():
            actual = dict(block.named_parameters())[name].grad
            assert actual is not None, name
            np.testing.assert_allclose(actual, expected, atol=1e-8,
                                       err_msg=f"{name} under "
                                               f"{attn}+{ffn}/{ep_mode}")
        block.zero_grad()
        engine.refresh_shards()
