"""Tests for the MoE layer: router, experts, grouped computation."""

import numpy as np
import pytest

from repro.model.moe import Expert, MoELayer, TopKRouter, \
    grouped_expert_forward
from repro.model.routing import build_dispatch_plan
from repro.tensor import Tensor

from conftest import gradcheck


class TestTopKRouter:
    def test_selects_top_probabilities(self, rng):
        router = TopKRouter(rng, 8, 4, 2, dtype=np.float64)
        x = Tensor(rng.standard_normal((10, 8)))
        routing, weights, _ = router(x)
        # Selected experts must have the k largest probabilities.
        logits = x.data @ router.gate.weight.data
        probs = np.exp(logits) / np.exp(logits).sum(-1, keepdims=True)
        for t in range(10):
            chosen = set(routing.expert_index[t])
            top = set(np.argsort(-probs[t])[:2])
            assert chosen == top

    def test_weights_renormalized(self, rng):
        router = TopKRouter(rng, 8, 4, 2)
        _, weights, _ = router(Tensor(rng.standard_normal((6, 8))))
        np.testing.assert_allclose(weights.data.sum(-1), 1.0, rtol=1e-5)

    def test_top1_weight_is_one(self, rng):
        router = TopKRouter(rng, 8, 4, 1)
        _, weights, _ = router(Tensor(rng.standard_normal((6, 8))))
        np.testing.assert_allclose(weights.data, 1.0, rtol=1e-6)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="top_k"):
            TopKRouter(rng, 8, 4, 5)
        with pytest.raises(ValueError, match="experts_per_group"):
            TopKRouter(rng, 8, 4, 2, experts_per_group=3)

    def test_aux_loss_balanced_baseline(self, rng):
        """With perfectly uniform probabilities the Switch loss is 1."""
        router = TopKRouter(rng, 8, 4, 1)
        router.gate.weight.data[:] = 0.0  # uniform gate
        _, _, aux = router(Tensor(rng.standard_normal((400, 8))))
        # f is whatever argsort ties produce, but P is exactly uniform:
        # aux = E * sum_e f_e * (1/E) = 1.
        assert aux.item() == pytest.approx(1.0, rel=1e-5)

    def test_aux_loss_penalizes_collapse(self, rng):
        """Concentrating all mass on one expert raises the loss toward
        E (here 4)."""
        router = TopKRouter(rng, 8, 4, 1, dtype=np.float64)
        router.gate.weight.data[:] = 0.0
        router.gate.weight.data[:, 0] = 50.0
        x = np.abs(rng.standard_normal((100, 8)))  # positive sum => expert 0
        _, _, aux = router(Tensor(x))
        assert aux.item() > 3.5

    def test_group_balance_ignores_within_group_skew(self, rng):
        """With experts_per_group=2, skew *within* a device's experts is
        invisible to the loss (§3.2: per-device balance)."""
        router = TopKRouter(rng, 8, 4, 1, experts_per_group=2,
                            dtype=np.float64)
        router.gate.weight.data[:] = 0.0
        # All mass on expert 0 — but groups {0,1}, {2,3}: group-level
        # f = [1, 0], P ≈ [1, 0] → loss ≈ 2 (G=2 groups).
        router.gate.weight.data[:, 0] = 50.0
        x = np.abs(rng.standard_normal((100, 8)))
        _, _, aux_within = router(Tensor(x))
        per_expert = TopKRouter(rng, 8, 4, 1, dtype=np.float64)
        per_expert.gate.weight.data[:] = router.gate.weight.data
        _, _, aux_pe = per_expert(Tensor(x))
        assert aux_within.item() == pytest.approx(2.0, rel=0.05)
        assert aux_pe.item() == pytest.approx(4.0, rel=0.05)

    def test_aux_loss_differentiable(self, rng):
        router = TopKRouter(rng, 8, 4, 2, dtype=np.float64)
        x = Tensor(rng.standard_normal((20, 8)))
        _, _, aux = router(x)
        aux.backward()
        assert router.gate.weight.grad is not None
        assert np.abs(router.gate.weight.grad).max() > 0


class TestCapacityDropping:
    def test_no_drop_by_default(self, rng):
        router = TopKRouter(rng, 8, 4, 2)
        routing, _, _ = router(Tensor(rng.standard_normal((50, 8))))
        assert routing.kept.all()

    def test_capacity_enforced(self, rng):
        router = TopKRouter(rng, 8, 4, 2, capacity_factor=1.0)
        routing, _, _ = router(Tensor(rng.standard_normal((64, 8))))
        capacity = int(np.ceil(1.0 * 64 * 2 / 4))
        assert routing.tokens_per_expert(4).max() <= capacity

    def test_fcfs_order(self, rng):
        """Earlier tokens keep their slots; later overflow drops."""
        router = TopKRouter(rng, 8, 2, 1, capacity_factor=0.5)
        router.gate.weight.data[:] = 0.0
        router.gate.weight.data[:, 0] = 10.0  # everyone wants expert 0
        routing, _, _ = router(Tensor(np.abs(rng.standard_normal((8, 8)))))
        capacity = int(np.ceil(0.5 * 8 * 1 / 2))
        assert routing.kept[:capacity, 0].all()
        assert not routing.kept[capacity:, 0].any()

    def test_generous_capacity_keeps_all(self, rng):
        router = TopKRouter(rng, 8, 4, 2, capacity_factor=8.0)
        routing, _, _ = router(Tensor(rng.standard_normal((32, 8))))
        assert routing.kept.all()


class TestExpert:
    def test_swiglu_structure(self, rng):
        e = Expert(rng, 6, 10, dtype=np.float64)
        x = rng.standard_normal((4, 6))
        out = e(Tensor(x)).data
        a = x @ e.fc1.data
        b = x @ e.fc3.data
        silu = a / (1 + np.exp(-a)) * a / a  # x*sigmoid(x)
        expected = (a * (1 / (1 + np.exp(-a))) * b) @ e.fc2.data
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_grad(self, rng):
        e = Expert(rng, 4, 6, dtype=np.float64)

        def fn(x, w1, w3, w2):
            gate = x @ w1
            lin = x @ w3
            return (gate.silu() * lin) @ w2

        gradcheck(fn, [rng.standard_normal((3, 4)), e.fc1.data.copy(),
                       e.fc3.data.copy(), e.fc2.data.copy()], rng)


class TestGroupedForward:
    def test_matches_per_expert_calls(self, rng):
        experts = [Expert(rng, 4, 6, dtype=np.float64) for _ in range(3)]
        from repro.model.routing import RoutingResult
        idx = np.array([[0], [2], [1], [2], [0]])
        r = RoutingResult(idx, np.ones((5, 1)), np.ones((5, 1), bool))
        plan = build_dispatch_plan(r, 3)
        x = Tensor(rng.standard_normal((5, 4)))
        from repro.tensor import ops
        ffn_in = ops.take_rows(x, plan.token_of_row)
        out = grouped_expert_forward(experts, ffn_in, plan).data
        for row in range(plan.n_rows):
            token = plan.token_of_row[row]
            expert = idx[token, 0]
            expected = experts[expert](Tensor(x.data[token:token + 1])).data
            np.testing.assert_allclose(out[row], expected[0], rtol=1e-10)

    def test_offset_out_of_range(self, rng):
        experts = [Expert(rng, 4, 6) for _ in range(2)]
        from repro.model.routing import RoutingResult
        r = RoutingResult(np.array([[3]]), np.ones((1, 1)),
                          np.ones((1, 1), bool))
        plan = build_dispatch_plan(r, 4)
        with pytest.raises(IndexError, match="this rank holds"):
            grouped_expert_forward(experts, Tensor(np.zeros((1, 4))),
                                   plan, expert_offset=0)


class TestMoELayer:
    def test_output_shape(self, rng, tiny_config):
        moe = MoELayer(rng, 32, 48, 8, 2)
        x = Tensor(rng.standard_normal((2, 4, 32)).astype(np.float32))
        out = moe(x)
        assert out.hidden.shape == (2, 4, 32)
        assert out.tokens_per_expert.sum() == 2 * 4 * 2

    def test_flat_input(self, rng):
        moe = MoELayer(rng, 16, 24, 4, 2)
        out = moe(Tensor(rng.standard_normal((6, 16)).astype(np.float32)))
        assert out.hidden.shape == (6, 16)

    def test_top1_single_expert_equivalence(self, rng):
        """With top-1 routing, each token's output is exactly the chosen
        expert's output (weight 1)."""
        moe = MoELayer(rng, 8, 12, 4, 1, dtype=np.float64)
        x = rng.standard_normal((5, 8))
        out = moe(Tensor(x))
        for t in range(5):
            e = out.routing.expert_index[t, 0]
            expected = moe.experts[e](Tensor(x[t:t + 1])).data[0]
            np.testing.assert_allclose(out.hidden.data[t], expected,
                                       rtol=1e-10)

    def test_weighted_combination(self, rng):
        """Top-2 output equals the gate-weighted sum of expert outputs."""
        moe = MoELayer(rng, 8, 12, 4, 2, dtype=np.float64)
        x = rng.standard_normal((4, 8))
        out = moe(Tensor(x))
        for t in range(4):
            acc = np.zeros(8)
            for s in range(2):
                e = out.routing.expert_index[t, s]
                w = out.routing.gate_weight[t, s]
                acc += w * moe.experts[e](Tensor(x[t:t + 1])).data[0]
            np.testing.assert_allclose(out.hidden.data[t], acc, rtol=1e-9)

    def test_gradients_flow_everywhere(self, rng):
        moe = MoELayer(rng, 8, 12, 4, 2, dtype=np.float64)
        x = Tensor(rng.standard_normal((16, 8)), requires_grad=True)
        out = moe(x)
        (out.hidden.sum() + out.aux_loss).backward()
        assert x.grad is not None
        assert moe.router.gate.weight.grad is not None
        # Every expert that received tokens has gradients.
        for e, expert in enumerate(moe.experts):
            if out.tokens_per_expert[e] > 0:
                assert expert.fc1.grad is not None, f"expert {e}"

    def test_dropped_tokens_zero_contribution(self, rng):
        """A token whose only slots are dropped outputs zero."""
        moe = MoELayer(rng, 8, 12, 2, 1, capacity_factor=0.25,
                       dtype=np.float64)
        moe.router.gate.weight.data[:] = 0.0
        moe.router.gate.weight.data[:, 0] = 10.0
        x = np.abs(rng.standard_normal((8, 8)))
        out = moe(Tensor(x))
        capacity = int(np.ceil(0.25 * 8 * 1 / 2))
        np.testing.assert_allclose(out.hidden.data[capacity:], 0.0,
                                   atol=1e-12)
