"""Equivalence tests: SP and TP attention engines vs. the reference.

The central correctness property of §3.1: both parallel attention
implementations must produce *exactly* the reference module's outputs
and gradients, while moving the Eq. 1 / Eq. 2 communication volumes.
"""

import numpy as np
import pytest

from repro.comm import World
from repro.core.analysis import (
    sp_attention_comm_volume,
    tp_attention_comm_volume,
)
from repro.model.layers import SelfAttention
from repro.parallel.sp_attention import SPAttentionEngine
from repro.parallel.tp_attention import TPAttentionEngine
from repro.tensor import Tensor


def run_reference(rng, attn, x):
    xt = Tensor(x, requires_grad=True)
    out = attn(xt)
    g = rng.standard_normal(out.shape)
    out.backward(g)
    result = {
        "out": out.data.copy(),
        "dx": xt.grad.copy(),
        "d_qkv": attn.qkv_proj.weight.grad.copy(),
        "d_out": attn.out_proj.weight.grad.copy(),
        "g": g,
    }
    attn.zero_grad()
    return result


def shard_seq(x, n):
    s = x.shape[1]
    return [Tensor(x[:, r * s // n:(r + 1) * s // n].copy(),
                   requires_grad=True) for r in range(n)]


CONFIGS = [
    # (batch, seq, hidden, heads, gqa_ratio, n_ranks)
    (2, 8, 16, 8, 2, 4),
    (1, 16, 32, 8, 4, 2),
    (3, 12, 24, 4, 1, 2),
    (1, 8, 32, 8, 1, 8),
]


class TestSPAttention:
    @pytest.mark.parametrize("b,s,h,nh,m,n", CONFIGS)
    def test_matches_reference(self, b, s, h, nh, m, n):
        rng = np.random.default_rng(b * 100 + s)
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        x = rng.standard_normal((b, s, h))
        ref = run_reference(rng, attn, x)

        world = World(n, n)
        engine = SPAttentionEngine(world.full_group(), attn)
        shards = shard_seq(x, n)
        outs = engine.forward(shards, s)
        full = np.concatenate([o.data for o in outs], axis=1)
        np.testing.assert_allclose(full, ref["out"], atol=1e-10)

        w = s // n
        for r, out in enumerate(outs):
            out.backward(ref["g"][:, r * w:(r + 1) * w])
        dx = np.concatenate([sh.grad for sh in shards], axis=1)
        np.testing.assert_allclose(dx, ref["dx"], atol=1e-10)
        np.testing.assert_allclose(attn.qkv_proj.weight.grad,
                                   ref["d_qkv"], atol=1e-10)
        np.testing.assert_allclose(attn.out_proj.weight.grad,
                                   ref["d_out"], atol=1e-10)

    def test_head_divisibility_required(self, rng):
        attn = SelfAttention(rng, 16, 8, 2)  # 4 kv heads
        world = World(8, 8)
        with pytest.raises(ValueError, match="kv_heads"):
            SPAttentionEngine(world.full_group(), attn)

    def test_forward_volume_is_half_eq2(self, rng):
        """The measured per-pass A2A volume equals Eq. 2 / 2: the
        paper's Eq. 2 counts both directions of each all-to-all."""
        b, s, h, nh, m, n = 2, 8, 16, 8, 2, 4
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        world = World(n, n)
        engine = SPAttentionEngine(world.full_group(), attn)
        world.ledger.clear()
        engine.forward(shard_seq(rng.standard_normal((b, s, h)), n), s)
        measured = sum(
            r.total_bytes for r in world.ledger.records
            if r.tag.startswith("sp_attn") and not r.tag.endswith(":bwd")
        ) / 8.0  # float64 elements
        formula_total = sp_attention_comm_volume(b, s, h, n, m) * n
        assert measured == pytest.approx(formula_total / 2.0)

    def test_backward_volume_equals_forward(self, rng):
        b, s, h, nh, m, n = 2, 8, 16, 8, 2, 4
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        world = World(n, n)
        engine = SPAttentionEngine(world.full_group(), attn)
        x = rng.standard_normal((b, s, h))
        shards = shard_seq(x, n)
        outs = engine.forward(shards, s)
        # Single backward sweep (as a real combined loss would produce);
        # per-shard sweeps would re-traverse shared ancestors and
        # multiply the ledger's :bwd entries.
        total = outs[0].sum()
        for out in outs[1:]:
            total = total + out.sum()
        total.backward()
        led = world.ledger
        fwd = sum(r.total_bytes for r in led.records
                  if r.tag.startswith("sp_attn")
                  and not r.tag.endswith(":bwd"))
        bwd = sum(r.total_bytes for r in led.records
                  if r.tag.startswith("sp_attn")
                  and r.tag.endswith(":bwd"))
        assert fwd == pytest.approx(bwd)

    def test_sp_volume_below_tp(self, rng):
        """Eq. 2 < Eq. 1 whenever n > (2 + 2/m)."""
        for m in (1, 2, 4, 8):
            sp = sp_attention_comm_volume(1, 64, 128, 8, m)
            tp = tp_attention_comm_volume(1, 64, 128, 8)
            assert sp < tp

    def test_bad_shard_seq(self, rng):
        attn = SelfAttention(rng, 16, 8, 2, dtype=np.float64)
        world = World(4, 4)
        engine = SPAttentionEngine(world.full_group(), attn)
        shards = shard_seq(rng.standard_normal((1, 8, 16)), 4)
        with pytest.raises(ValueError, match="expected"):
            engine.forward(shards, 16)  # wrong full seq length


class TestTPAttention:
    @pytest.mark.parametrize("b,s,h,nh,m,n", CONFIGS)
    def test_matches_reference(self, b, s, h, nh, m, n):
        rng = np.random.default_rng(b * 100 + s + 7)
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        x = rng.standard_normal((b, s, h))
        ref = run_reference(rng, attn, x)

        world = World(n, n)
        engine = TPAttentionEngine(world.full_group(), attn)
        shards = shard_seq(x, n)
        outs = engine.forward(shards, s)
        full = np.concatenate([o.data for o in outs], axis=1)
        np.testing.assert_allclose(full, ref["out"], atol=1e-10)

        w = s // n
        for r, out in enumerate(outs):
            out.backward(ref["g"][:, r * w:(r + 1) * w])
        dx = np.concatenate([sh.grad for sh in shards], axis=1)
        np.testing.assert_allclose(dx, ref["dx"], atol=1e-10)
        d_qkv, d_out = engine.reference_weight_grads()
        np.testing.assert_allclose(d_qkv, ref["d_qkv"], atol=1e-10)
        np.testing.assert_allclose(d_out, ref["d_out"], atol=1e-10)

    def test_forward_volume_matches_eq1(self, rng):
        b, s, h, nh, m, n = 2, 8, 16, 8, 2, 4
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        world = World(n, n)
        engine = TPAttentionEngine(world.full_group(), attn)
        world.ledger.clear()
        engine.forward(shard_seq(rng.standard_normal((b, s, h)), n), s)
        measured = sum(
            r.total_bytes for r in world.ledger.records
            if r.tag.startswith("tp_attn") and not r.tag.endswith(":bwd")
        ) / 8.0
        assert measured == pytest.approx(
            tp_attention_comm_volume(b, s, h, n) * n)

    def test_weight_shards_are_leaves(self, rng):
        attn = SelfAttention(rng, 16, 8, 2, dtype=np.float64)
        world = World(4, 4)
        engine = TPAttentionEngine(world.full_group(), attn)
        assert all(w.requires_grad and w.node is None
                   for w in engine.qkv_weights)

    def test_tp_volume_constant_in_n(self, rng):
        """Eq. 1's (n-1)/n barely changes with n — TP's scalability
        limitation (§7)."""
        v8 = tp_attention_comm_volume(1, 64, 128, 8)
        v64 = tp_attention_comm_volume(1, 64, 128, 64)
        assert v64 / v8 < 1.15
