"""Tests for pipeline-parallel schedules and their safety properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.pipeline import (
    PipelineRunner,
    PipelineTask,
    bubble_fraction,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_schedule,
    validate_schedule,
)


class TestGPipe:
    def test_valid(self):
        validate_schedule(gpipe_schedule(4, 8), 8)

    def test_all_forwards_first(self):
        sched = gpipe_schedule(3, 4)
        for tasks in sched:
            phases = [t.phase for t in tasks]
            assert phases == ["F"] * 4 + ["B"] * 4

    def test_backwards_reversed(self):
        tasks = gpipe_schedule(2, 3)[0]
        bwd = [t.micro_batch for t in tasks if t.phase == "B"]
        assert bwd == [2, 1, 0]


class Test1F1B:
    def test_valid_many_shapes(self):
        for p, m in [(1, 1), (2, 2), (4, 8), (8, 4), (3, 7), (5, 5)]:
            validate_schedule(one_f_one_b_schedule(p, m), m)

    def test_warmup_depth(self):
        sched = one_f_one_b_schedule(4, 8)
        # Stage 0 warms up with p-1 = 3 forwards before its first B.
        phases = [t.phase for t in sched[0]]
        assert phases[:3] == ["F", "F", "F"]
        assert "B" in phases[3:5]

    def test_last_stage_strict_alternation(self):
        sched = one_f_one_b_schedule(4, 6)
        phases = [t.phase for t in sched[-1]]
        assert phases == ["F", "B"] * 6

    def test_in_flight_bounded(self):
        """At most ``p`` micro-batches have outstanding activations on
        stage 0 — the 1F1B memory guarantee GPipe lacks."""
        p, m = 4, 16
        sched = one_f_one_b_schedule(p, m)
        outstanding = max_outstanding(sched[0])
        assert outstanding <= p
        gpipe_outstanding = max_outstanding(gpipe_schedule(p, m)[0])
        assert gpipe_outstanding == m

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            one_f_one_b_schedule(0, 4)
        with pytest.raises(ValueError):
            one_f_one_b_schedule(4, 0)


def max_outstanding(tasks):
    live = 0
    worst = 0
    for t in tasks:
        live += 1 if t.phase == "F" else -1
        worst = max(worst, live)
    return worst


class TestInterleaved:
    def test_valid(self):
        for p, m, v in [(2, 4, 2), (4, 8, 2), (4, 4, 3), (2, 2, 4)]:
            validate_schedule(interleaved_1f1b_schedule(p, m, v), m, v)

    def test_v1_falls_back(self):
        a = interleaved_1f1b_schedule(4, 8, 1)
        b = one_f_one_b_schedule(4, 8)
        assert a == b

    def test_micro_multiple_required(self):
        with pytest.raises(ValueError, match="divisible"):
            interleaved_1f1b_schedule(4, 6, 2)

    def test_task_count(self):
        sched = interleaved_1f1b_schedule(2, 4, 3)
        for tasks in sched:
            assert len(tasks) == 2 * 4 * 3  # F and B for every (m, v)


class TestValidateSchedule:
    def test_detects_incomplete(self):
        sched = gpipe_schedule(2, 3)
        sched[0] = sched[0][:-1]
        with pytest.raises(ValueError, match="incomplete"):
            validate_schedule(sched, 3)

    def test_detects_deadlock(self):
        # Stage 1 runs B before its own F arrives from stage 0's F.
        sched = [
            [PipelineTask("B", 0), PipelineTask("F", 0)],
            [PipelineTask("F", 0), PipelineTask("B", 0)],
        ]
        with pytest.raises(ValueError, match="deadlock"):
            validate_schedule(sched, 1)


class TestBubbleFraction:
    def test_single_stage_zero(self):
        assert bubble_fraction(1, 10) == 0.0

    def test_formula(self):
        assert bubble_fraction(4, 12) == pytest.approx(3 / 15)

    def test_interleaving_divides_bubble(self):
        plain = bubble_fraction(8, 16)
        inter = bubble_fraction(8, 16, n_virtual=4)
        assert inter < plain
        # (p-1)/(vm + p - 1)
        assert inter == pytest.approx(7 / (64 + 7))

    def test_fewer_micro_batches_more_bubble(self):
        """Table 3's MFU decline: fixed global batch + more pipeline
        stages per GPU count means fewer micro-batches per pipeline."""
        assert bubble_fraction(15, 48) > bubble_fraction(15, 360)

    @given(st.integers(1, 16), st.integers(1, 64), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, p, m, v):
        frac = bubble_fraction(p, m, v)
        assert 0.0 <= frac < 1.0


class TestPipelineRunner:
    def test_numerically_inert(self, rng):
        """Running stages through the pipeline runner equals sequential
        application — pipelining is pure scheduling."""
        mats = [rng.standard_normal((4, 4)) for _ in range(6)]
        stage_fns = [[(lambda a, m=m: a @ m) for m in mats[i::2]]
                     for i in range(2)]  # 2 virtual chunks × 3 stages
        runner = PipelineRunner(stage_fns, n_micro=3)
        inputs = [rng.standard_normal((2, 4)) for _ in range(3)]
        outs = runner.run(inputs)
        for x, out in zip(inputs, outs):
            expected = x
            for v in range(2):
                for m in mats[v::2]:
                    expected = expected @ m
            np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_input_count_checked(self, rng):
        runner = PipelineRunner([[lambda a: a]], n_micro=2)
        with pytest.raises(ValueError, match="micro inputs"):
            runner.run([np.zeros(2)])
