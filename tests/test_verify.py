"""Differential verification subsystem (repro.verify) tests.

Three layers of coverage: the case/registry plumbing, the conformance
engine on known-good plans, and — most importantly — proof that the
invariants *catch* injected bugs: a bit-flipped collective payload is
flagged and shrunk to a minimal reproducer, and each invariant detects
a hand-tampered artifact of its bug class.
"""

import numpy as np
import pytest

from repro.verify import (
    ConformanceReport,
    VerifyCase,
    registered_invariants,
    run_case,
    run_matrix,
    shrink,
    smoke_matrix,
    tolerance_for_precision,
)
from repro.verify import invariants as inv
from repro.verify.engine import _run_golden, _run_parallel
from repro.verify.fuzz import (
    _shrink_candidates,
    corrupting_world_setup,
    sample_case,
)

#: A deliberately tiny config so each differential run stays cheap.
SMALL = dict(ranks=2, layers=1, hidden=16, heads=4, gqa_ratio=2,
             ffn_hidden=16, experts=2, top_k=1, vocab=32, batch=1,
             seq=4, steps=1)


def small_case(**kw):
    return VerifyCase(**{**SMALL, **kw})


class TestVerifyCase:
    def test_defaults_valid(self):
        case = VerifyCase()
        assert case.ranks == 4
        assert case.case_id.startswith("sp-ep-a2a-fp32-seq")

    @pytest.mark.parametrize("changes", [
        dict(heads=6),            # not divisible by ranks=4
        dict(experts=6),          # not divisible by ranks=4
        dict(seq=10),             # not divisible by ranks=4
        dict(hidden=36),          # not divisible by heads=8
        dict(top_k=9),            # > experts
        dict(ep_dispatch="ring"),
        dict(precision="fp4"),
        dict(execution="mpi"),
        dict(dropout=1.0),
        dict(steps=0),
    ])
    def test_validation_rejects(self, changes):
        with pytest.raises(ValueError):
            VerifyCase(**changes)

    def test_replace_revalidates(self):
        case = VerifyCase()
        with pytest.raises(ValueError):
            case.replace(ranks=3)

    def test_twin_sequential(self):
        case = VerifyCase(execution="threaded")
        twin = case.twin_sequential()
        assert twin.execution == "sequential"
        assert twin.replace(execution="threaded") == case

    def test_case_id_distinguishes_fields(self):
        ids = {
            VerifyCase().case_id,
            VerifyCase(execution="threaded").case_id,
            VerifyCase(precision="fp8").case_id,
            VerifyCase(ep_dispatch="ag_rs").case_id,
            VerifyCase(seed=9).case_id,
            VerifyCase(dropout=0.1).case_id,
        }
        assert len(ids) == 6

    def test_smoke_matrix_covers_grid(self):
        cases = smoke_matrix()
        assert len(cases) == 18
        assert {c.execution for c in cases} == {"sequential", "threaded",
                                                "vectorized"}
        assert {c.ep_dispatch for c in cases} == {"a2a", "ag_rs"}
        assert {c.precision for c in cases} == {"fp32", "fp8"}
        assert len({c.case_id for c in cases}) == 18
        # Vectorized execution only exists in the DAG executor.
        assert all(c.backend == "dag" for c in cases
                   if c.execution == "vectorized")
        # One tiled (§4.2) DAG leg per execution × dispatch.
        tiled = [c for c in cases if c.tile_tokens is not None]
        assert len(tiled) == 6
        assert all(c.backend == "dag" for c in tiled)
        assert {(c.execution, c.ep_dispatch) for c in tiled} == {
            (e, d) for e in ("sequential", "threaded", "vectorized")
            for d in ("a2a", "ag_rs")
        }


class TestRegistry:
    def test_builtin_invariants_present(self):
        names = [i.name for i in registered_invariants()]
        for expected in ("finiteness", "golden_loss", "golden_grads",
                         "golden_params", "threaded_bitwise",
                         "token_conservation", "router_mass",
                         "comm_audit"):
            assert expected in names

    def test_fp8_bands_looser_than_fp32(self):
        for kind in ("loss", "grads", "params"):
            assert (tolerance_for_precision("fp8", kind).rtol
                    > tolerance_for_precision("fp32", kind).rtol)

    def test_unknown_band_raises(self):
        with pytest.raises(KeyError):
            tolerance_for_precision("fp32", "perplexity")

    def test_register_custom_invariant(self):
        custom = inv.Invariant(
            name="always_green", description="test-only",
            applies=lambda case: True, check=lambda art: [])
        try:
            inv.register_invariant(custom)
            assert custom in registered_invariants()
            result = run_case(small_case())
            assert result.outcome("always_green").status == "pass"
        finally:
            del inv._REGISTRY["always_green"]

    def test_applies_gates_to_skip(self):
        result = run_case(small_case())  # sequential
        assert result.outcome("threaded_bitwise").status == "skip"
        # fp8-only skip: golden params checked for uncompressed comm
        assert result.outcome("golden_params").status == "pass"
        fp8 = run_case(small_case(precision="fp8",
                                  ep_dispatch="ag_rs"))
        assert fp8.outcome("golden_params").status == "skip"


class TestConformance:
    @pytest.mark.parametrize("execution", ["sequential", "threaded"])
    @pytest.mark.parametrize("dispatch", ["a2a", "ag_rs"])
    def test_known_good_plans_conform(self, execution, dispatch):
        result = run_case(small_case(execution=execution,
                                     ep_dispatch=dispatch))
        assert result.ok, [f.detail for f in result.failures()]
        assert result.outcome("golden_loss").status == "pass"
        if execution == "threaded":
            assert result.outcome("threaded_bitwise").status == "pass"

    def test_single_rank_case_conforms(self):
        result = run_case(small_case(ranks=1, experts=1, seq=4))
        assert result.ok, [f.detail for f in result.failures()]
        # Eq. 1-4 describe inter-rank traffic; skipped at world size 1.
        assert result.outcome("comm_audit").status == "skip"

    def test_dropout_case_skips_golden_but_stays_bitwise(self):
        result = run_case(small_case(execution="threaded", dropout=0.2,
                                     steps=2))
        assert result.ok, [f.detail for f in result.failures()]
        assert result.outcome("golden_loss").status == "skip"
        assert result.outcome("threaded_bitwise").status == "pass"

    def test_report_render(self):
        report = run_matrix([small_case(), small_case(seed=3)])
        text = report.render()
        assert "conformance matrix" in text
        assert small_case().case_id in text
        assert "2 cases, 2 conformant, 0 failing" in text

    def test_empty_report(self):
        assert ConformanceReport(results=[]).render() == "(no cases run)"


class TestInjectedViolations:
    """Reverting a bugfix / injecting a perturbation must be *caught*."""

    def test_bitflip_breaks_threaded_identity(self):
        case = small_case(execution="threaded")
        clean = run_case(case)
        assert clean.ok
        hurt = run_case(case, world_setup=corrupting_world_setup(seed=0))
        assert not hurt.ok
        failing = {f.name for f in hurt.failures()}
        assert "threaded_bitwise" in failing

    def test_bitflip_caught_by_golden_on_sequential(self):
        hurt = run_case(small_case(),
                        world_setup=corrupting_world_setup(seed=0))
        assert not hurt.ok
        failing = {f.name for f in hurt.failures()}
        assert failing & {"golden_loss", "golden_grads",
                          "golden_params"}

    def test_shrink_finds_minimal_reproducer(self):
        original = small_case(execution="threaded", layers=2, steps=2,
                              batch=2, seq=8, experts=4, top_k=2)

        def fails(case):
            return not run_case(
                case, world_setup=corrupting_world_setup(seed=0)).ok

        assert fails(original)
        minimal = shrink(original, fails)
        assert fails(minimal)
        # Strictly smaller, and a local minimum: no candidate
        # reduction of the minimal case still fails.
        def size(c):
            return (c.ranks, c.layers, c.steps, c.batch, c.seq,
                    c.experts, c.top_k)


        assert size(minimal) != size(original)
        assert all(a <= b for a, b in zip(size(minimal),
                                          size(original)))
        assert all(not fails(c) for c in _shrink_candidates(minimal))

    def test_shrink_respects_eval_budget(self):
        calls = []

        def fails(case):
            calls.append(case)
            return True  # everything "fails": shrink to the floor

        shrink(small_case(execution="threaded", layers=2, steps=2),
               fails, max_evals=3)
        assert len(calls) <= 3


class TestInvariantChecks:
    """Each check flags a hand-tampered artifact of its bug class."""

    @pytest.fixture()
    def artifacts(self):
        art = _run_parallel(small_case())
        art.golden = _run_golden(small_case())
        return art

    def test_clean_artifacts_pass(self, artifacts):
        assert inv._check_finiteness(artifacts) == []
        assert inv._check_golden_loss(artifacts) == []
        assert inv._check_token_conservation(artifacts) == []
        assert inv._check_router_mass(artifacts) == []
        assert inv._check_comm_audit(artifacts) == []

    def test_finiteness_flags_nan_param(self, artifacts):
        name = next(iter(artifacts.params))
        artifacts.params[name].flat[0] = np.nan
        assert any(name in v for v in
                   inv._check_finiteness(artifacts))

    def test_golden_loss_flags_drift(self, artifacts):
        artifacts.losses[0] *= 1.01
        assert inv._check_golden_loss(artifacts)

    def test_token_conservation_flags_lost_rows(self, artifacts):
        tele = next(t for t in artifacts.telemetry if t is not None)
        tele["tokens_per_rank"][0] -= 1
        assert inv._check_token_conservation(artifacts)

    def test_token_conservation_flags_bad_splits(self, artifacts):
        tele = next(t for t in artifacts.telemetry if t is not None)
        assert tele["mode"] == "a2a" and tele["send_splits"]
        tele["send_splits"][0][0] += 1
        assert inv._check_token_conservation(artifacts)

    def test_router_mass_flags_overweight(self, artifacts):
        tele = next(t for t in artifacts.telemetry if t is not None)
        tele["gate_mass"][0] = tele["gate_mass"][0] + 0.5
        assert inv._check_router_mass(artifacts)

    def test_comm_audit_flags_tampered_counters(self, artifacts):
        for agg in artifacts.ledger.cumulative.values():
            agg["total_bytes"] *= 1.5
        assert inv._check_comm_audit(artifacts)


class TestFuzzer:
    def test_sampled_cases_are_valid_and_diverse(self):
        rng = np.random.default_rng(0)
        cases = [sample_case(rng) for _ in range(40)]
        # Construction already validated; check the space is covered.
        assert {c.ep_dispatch for c in cases} == {"a2a", "ag_rs"}
        assert {c.precision for c in cases} == {"fp32", "fp8"}
        assert {c.execution for c in cases} == {"sequential",
                                                "threaded",
                                                "vectorized"}
        assert len({c.case_id for c in cases}) > 20

    def test_sampling_is_deterministic(self):
        a = [sample_case(np.random.default_rng(7)) for _ in range(10)]
        b = [sample_case(np.random.default_rng(7)) for _ in range(10)]
        assert a == b

    def test_shrink_candidates_are_strictly_smaller(self):
        case = VerifyCase(execution="threaded")
        for candidate in _shrink_candidates(case):
            assert candidate != case


class TestCli:
    def test_verify_smoke_exit_codes(self, monkeypatch, capsys):
        import repro.__main__ as cli
        import repro.verify as verify

        monkeypatch.setattr(verify, "smoke_matrix",
                            lambda seed=0: [small_case(seed=seed)])
        assert cli.main(["verify", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "conformance matrix" in out
        assert "1 cases, 1 conformant, 0 failing" in out

    def test_verify_failure_exits_nonzero(self, monkeypatch, capsys):
        import repro.__main__ as cli
        import repro.verify as verify

        bad = inv.InvariantResult("golden_loss", "fail", "synthetic")
        from repro.verify.engine import CaseResult

        monkeypatch.setattr(
            verify, "run_matrix",
            lambda cases, progress=None: ConformanceReport(
                [CaseResult(case=cases[0], outcomes=[bad])]))
        assert cli.main(["verify", "--smoke"]) == 1
        assert "FAIL" in capsys.readouterr().out
