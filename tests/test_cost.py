"""Tests for the α–β collective cost models."""

import pytest

from repro.comm.cost import (
    LinkSpec,
    all_to_all_time,
    broadcast_time,
    flat_sync_time,
    hierarchical_sync_time,
    ring_all_gather_time,
    ring_all_reduce_time,
    ring_reduce_scatter_time,
)

LINK = LinkSpec(bandwidth=100e9, latency=1e-6, a2a_efficiency=0.6)
SLOW = LinkSpec(bandwidth=10e9, latency=5e-6, a2a_efficiency=0.6)


class TestLinkSpec:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1e9, a2a_efficiency=1.5)


class TestRingCollectives:
    def test_single_rank_free(self):
        assert ring_all_gather_time(1e9, 1, LINK) == 0.0
        assert ring_all_reduce_time(1e9, 1, LINK) == 0.0

    def test_ag_formula(self):
        # (n-1) steps of one shard each.
        t = ring_all_gather_time(8e9, 8, LINK)
        assert t == pytest.approx(7 * (1e-6 + 1e9 / 100e9))

    def test_rs_equals_ag(self):
        assert ring_reduce_scatter_time(5e9, 4, LINK) == \
            ring_all_gather_time(5e9, 4, LINK)

    def test_ar_is_double(self):
        assert ring_all_reduce_time(5e9, 4, LINK) == \
            pytest.approx(2 * ring_all_gather_time(5e9, 4, LINK))

    def test_volume_shrinks_with_n(self):
        """Ring time approaches total/bw as n grows — the reason SP/EP
        comm scales while TP's does not (§7)."""
        times = [ring_all_gather_time(8e9, n, LINK) for n in (2, 4, 8, 64)]
        # (n-1)/n increases toward 1, so time rises but saturates.
        assert times[0] < times[-1] < 8e9 / 100e9 * 1.05 + 64 * 1e-6

    def test_bandwidth_monotonic(self):
        assert ring_all_gather_time(1e9, 4, SLOW) > \
            ring_all_gather_time(1e9, 4, LINK)


class TestAllToAll:
    def test_single_rank_free(self):
        assert all_to_all_time(1e9, 1, LINK) == 0.0

    def test_slower_than_ring_for_same_bytes(self):
        """Fig. 7's premise: the all-pairs pattern is less efficient
        than a ring at equal per-rank bytes."""
        per_rank = 7e9 / 8
        a2a = all_to_all_time(per_rank, 8, LINK)
        ring = ring_all_gather_time(7e9 / 7 * 8 / 8 * 8, 8, LINK)
        # Compare pure bandwidth terms: a2a pays 1/efficiency.
        assert a2a > per_rank / LINK.bandwidth

    def test_efficiency_applied(self):
        t_eff = all_to_all_time(1e9, 4, LINK)
        perfect = LinkSpec(bandwidth=100e9, latency=1e-6,
                           a2a_efficiency=1.0)
        assert t_eff > all_to_all_time(1e9, 4, perfect)


class TestBroadcast:
    def test_free_alone(self):
        assert broadcast_time(1e9, 1, LINK) == 0.0

    def test_pipeline_cost(self):
        assert broadcast_time(1e9, 4, LINK) == \
            pytest.approx(1e-6 + 1e9 / 100e9)


class TestHierarchicalSync:
    INTRA = LinkSpec(bandwidth=200e9, latency=1e-6)
    INTER = LinkSpec(bandwidth=25e9, latency=2e-6)

    def test_pipelined_faster_than_sequential(self):
        pipelined = hierarchical_sync_time(1e9, 8, 4, self.INTRA,
                                           self.INTER, pipelined=True)
        sequential = hierarchical_sync_time(1e9, 8, 4, self.INTRA,
                                            self.INTER, pipelined=False)
        assert pipelined < sequential

    def test_pipelined_at_least_bottleneck(self):
        pipelined = hierarchical_sync_time(1e9, 8, 4, self.INTRA,
                                           self.INTER)
        inter_rs = ring_reduce_scatter_time(1e9 / 8, 4, self.INTER)
        intra_rs = ring_reduce_scatter_time(1e9, 8, self.INTRA)
        assert pipelined >= max(inter_rs, intra_rs)

    def test_sp_close_to_tp_under_bandwidth_asymmetry(self):
        """The Fig. 14 claim: with NVLink ≫ NIC, hierarchical SP sync is
        within a few percent of TP's flat sync."""
        p = 1024e6  # 1 GB attention parameters
        sp = hierarchical_sync_time(p, 8, 4, self.INTRA, self.INTER)
        tp = flat_sync_time(p, 8, 4, self.INTER)
        # Comparable within a few tens of percent (the paper measures
        # 0.3–3.1%); pipelining can even put SP slightly ahead because
        # TP's two inter-node phases run back to back.
        assert 0.9 < sp / tp < 1.35

    def test_sp_overhead_grows_when_links_symmetric(self):
        """Without the bandwidth asymmetry, SP's extra intra-node volume
        is no longer hidden — the counterfactual of Appendix A.1."""
        p = 1024e6
        symmetric = LinkSpec(bandwidth=25e9, latency=2e-6)
        sp = hierarchical_sync_time(p, 8, 4, symmetric, symmetric)
        tp = flat_sync_time(p, 8, 4, symmetric)
        assert sp / tp > 2.0
