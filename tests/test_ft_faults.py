"""Tests for comm-layer fault injection (repro.ft.faults)."""

import numpy as np
import pytest

from repro.comm import World, all_gather, all_reduce
from repro.ft import (
    CommTimeout,
    FaultPlan,
    FaultSpec,
    PayloadCorruption,
    RankCrash,
)
from repro.parallel.dist_ops import dist_all_gather
from repro.tensor import Tensor


def make_group(n=2):
    return World(n, n).full_group()


class TestFaultSpec:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor", at_call=0)
        with pytest.raises(ValueError, match="at_call"):
            FaultSpec("crash", at_call=-1)

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(rate=0.1, kinds=("gremlin",))
        with pytest.raises(ValueError, match="slow factor"):
            FaultPlan(slow_ranks={0: 0.5})


class TestScheduledFaults:
    def test_timeout_fires_once_at_call(self):
        group = make_group()
        group.world.attach_fault_plan(
            FaultPlan([FaultSpec("timeout", at_call=1)]))
        shards = [np.ones(4), np.ones(4)]
        all_gather(group, shards)  # call 0: clean
        with pytest.raises(CommTimeout):
            all_gather(group, shards)  # call 1: faults
        all_gather(group, shards)  # call 2 (replay analogue): clean
        assert [e.kind for e in group.world.fault_plan.fired] == \
            ["timeout"]

    def test_crash_is_not_transient(self):
        group = make_group()
        group.world.attach_fault_plan(
            FaultPlan([FaultSpec("crash", at_call=0)]))
        with pytest.raises(RankCrash):
            all_reduce(group, [np.ones(4), np.ones(4)])

    def test_op_filter_defers_to_matching_op(self):
        group = make_group()
        group.world.attach_fault_plan(FaultPlan(
            [FaultSpec("timeout", at_call=0, op="all_reduce")]))
        # Wrong op at the scheduled index: the spec stays pending.
        all_gather(group, [np.ones(4), np.ones(4)])
        assert group.world.fault_plan.pending
        all_reduce(group, [np.ones(4), np.ones(4)])  # index moved past
        assert group.world.fault_plan.pending  # never matches again

    def test_corruption_caught_by_checksum(self):
        group = make_group()
        group.world.attach_fault_plan(
            FaultPlan([FaultSpec("corrupt", at_call=0)]))
        with pytest.raises(PayloadCorruption):
            all_gather(group, [np.ones(4), np.ones(4)])

    def test_silent_corruption_flips_exactly_one_bit(self):
        group = make_group()
        group.world.attach_fault_plan(FaultPlan(
            [FaultSpec("corrupt", at_call=0)], verify_checksums=False))
        outs = all_gather(group, [np.zeros(8), np.zeros(8)])
        raw = np.concatenate([o.view(np.uint8) for o in outs])
        assert bin(int.from_bytes(raw.tobytes(), "little")).count("1") \
            == 1

    def test_clean_collectives_unaffected(self):
        group = make_group()
        group.world.attach_fault_plan(
            FaultPlan([FaultSpec("timeout", at_call=99)]))
        outs = all_gather(group, [np.arange(4.0), np.arange(4.0) + 4])
        np.testing.assert_array_equal(outs[0], np.arange(8.0))


class TestProbabilisticFaults:
    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            group = make_group()
            plan = FaultPlan(rate=0.3, seed=seed,
                             kinds=("timeout", "corrupt"))
            group.world.attach_fault_plan(plan)
            for _ in range(40):
                try:
                    all_reduce(group, [np.ones(2), np.ones(2)])
                except (CommTimeout, PayloadCorruption):
                    pass
            return [(e.kind, e.call_index) for e in plan.fired]

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert run(7)  # rate 0.3 over 40 calls: some faults fired

    def test_zero_rate_never_fires(self):
        group = make_group()
        plan = FaultPlan(seed=0)
        group.world.attach_fault_plan(plan)
        for _ in range(20):
            all_reduce(group, [np.ones(2), np.ones(2)])
        assert plan.fired == []
        assert plan.calls == 20


class TestSlowLinks:
    def test_slow_factor(self):
        plan = FaultPlan(slow_ranks={2: 2.0})
        assert plan.slow_factor(2) == 2.0
        assert plan.slow_factor(0) == 1.0


class TestDistOpsIntegration:
    def test_timeout_during_autograd_collective(self):
        world = World(2, 2)
        world.attach_fault_plan(
            FaultPlan([FaultSpec("timeout", at_call=0)]))
        group = world.full_group()
        shards = [Tensor(np.ones((2, 2)), requires_grad=True)
                  for _ in range(2)]
        with pytest.raises(CommTimeout):
            dist_all_gather(group, shards)

    def test_backward_collectives_consult_plan(self):
        world = World(2, 2)
        # Forward all_gather is call 0; its two backward
        # reduce-scatters are calls 1 and 2.
        world.attach_fault_plan(
            FaultPlan([FaultSpec("timeout", at_call=1)]))
        group = world.full_group()
        shards = [Tensor(np.ones((2, 2)), requires_grad=True)
                  for _ in range(2)]
        outs = dist_all_gather(group, shards)
        total = outs[0].sum() + outs[1].sum()
        with pytest.raises(CommTimeout):
            total.backward()

    def test_trainer_step_survives_without_plan(self):
        # No plan attached: hooks must be pure no-ops.
        world = World(2, 2)
        group = world.full_group()
        shards = [Tensor(np.ones((2, 2)), requires_grad=True)
                  for _ in range(2)]
        outs = dist_all_gather(group, shards)
        (outs[0].sum() + outs[1].sum()).backward()
        assert shards[0].grad is not None
