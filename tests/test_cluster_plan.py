"""Plan-space optimizer tests: ClusterSpec, tiered pricing, the
feasibility-filtered enumerator, the MoNTA cross-node-traffic check,
the fp8 dispatch-crossover shift, and the composed plan+schedule
search."""

import json

import pytest

from repro.comm.cost import (
    LinkSpec,
    all_to_all_time,
    cross_node_fraction,
    ring_all_gather_time,
    tiered_all_to_all_time,
    tiered_ring_time,
)
from repro.core.autoschedule import (
    AutoScheduler,
    _reorder_by_priority,
    optimize_plan,
)
from repro.core.cluster import ClusterSpec
from repro.core.config import (
    GPU_SPECS,
    MODEL_ZOO,
    ModelConfig,
    ParallelConfig,
    TrainConfig,
)
from repro.core.planner import (
    NoFeasiblePlan,
    PlanCandidate,
    _cross_node_a2a_bytes,
    dispatch_crossover_top_k,
    dispatch_mode_times,
    enumerate_plans,
    plan_cluster,
)
from repro.perf.estimator import CalibrationReport, KernelModel
from repro.perf.systems import MegaScalePerfModel
from repro.sim.engine import SimTask

H800 = GPU_SPECS["h800"]
MIXTRAL = MODEL_ZOO["mixtral-8x7b"]
SMALL = MODEL_ZOO["mixtral-8x2b"]
LINK = LinkSpec(bandwidth=168e9, latency=1e-5, a2a_efficiency=0.6)


# ---------------------------------------------------------------------------
# ClusterSpec
# ---------------------------------------------------------------------------


class TestClusterSpec:
    def test_homogeneous_shape(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=4, gpus_per_node=8)
        assert c.n_nodes == 4
        assert c.n_gpus == 32
        assert not c.is_heterogeneous
        assert c.bottleneck_gpu() is H800

    def test_default_links_derive_from_gpu(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        assert c.intra_link.bandwidth == pytest.approx(
            H800.nvlink_bandwidth * 0.42)
        assert c.inter_link.bandwidth == pytest.approx(
            H800.nic_bandwidth)

    def test_mixed_fleet_bottleneck_is_elementwise_min(self):
        c = ClusterSpec(name="mix", gpus_per_node=8,
                        node_gpus=("h800", "a100", "h20"))
        assert c.is_heterogeneous
        g = c.bottleneck_gpu()
        for attr in ("peak_flops", "memory_bytes", "memory_bandwidth",
                     "nvlink_bandwidth", "nic_bandwidth", "sm_count"):
            assert getattr(g, attr) == min(
                getattr(GPU_SPECS[m], attr)
                for m in ("h800", "a100", "h20"))

    def test_tier_selection(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2, gpus_per_node=8)
        assert not c.spans_nodes(8)
        assert c.spans_nodes(16)
        assert c.link_for_group(8) is c.intra_link
        assert c.link_for_group(16) is c.inter_link

    def test_cross_node_fraction(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2, gpus_per_node=4)
        assert c.cross_node_fraction(4) == 0.0
        assert c.cross_node_fraction(8) == pytest.approx(4 / 7)

    def test_json_round_trip(self, tmp_path):
        c = ClusterSpec(name="mix", gpus_per_node=4,
                        node_gpus=("h800", "a100"))
        again = ClusterSpec.from_json(c.to_json())
        assert again == c
        path = tmp_path / "cluster.json"
        path.write_text(c.to_json())
        assert ClusterSpec.load(str(path)) == c

    def test_unknown_gpu_rejected(self):
        with pytest.raises(ValueError, match="unknown GPU"):
            ClusterSpec(name="x", gpus_per_node=8,
                        node_gpus=("h800", "tpu-v9"))

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(name="x", gpus_per_node=8, node_gpus=())

    def test_from_dict_missing_keys(self):
        with pytest.raises(ValueError, match="cluster spec needs"):
            ClusterSpec.from_dict({"name": "x"})

    def test_example_specs_load(self):
        for name in ("h800x2", "mixed_fleet"):
            with open(f"examples/clusters/{name}.json") as fh:
                spec = ClusterSpec.from_dict(json.load(fh))
            assert spec.n_gpus > 0


# ---------------------------------------------------------------------------
# Tiered collective pricing
# ---------------------------------------------------------------------------


class TestTieredCost:
    INTRA = LinkSpec(bandwidth=168e9, latency=1e-5, a2a_efficiency=0.6)
    INTER = LinkSpec(bandwidth=50e9, latency=2e-5, a2a_efficiency=0.6)

    def test_cross_node_fraction_formula(self):
        assert cross_node_fraction(8, 8) == 0.0
        assert cross_node_fraction(16, 8) == pytest.approx(8 / 15)
        assert cross_node_fraction(1, 8) == 0.0

    def test_node_local_a2a_collapses_to_intra(self):
        t = tiered_all_to_all_time(1e8, 8, 8, self.INTRA, self.INTER)
        assert t == pytest.approx(
            all_to_all_time(1e8, 8, self.INTRA))

    def test_spanning_a2a_is_max_of_tiers(self):
        n, r = 16, 8
        t = tiered_all_to_all_time(1e8, n, r, self.INTRA, self.INTER)
        cross = cross_node_fraction(n, r)
        t_inter = (8 * self.INTER.latency + 1e8 * cross
                   / (self.INTER.bandwidth * 0.6))
        assert t == pytest.approx(t_inter)  # NIC tier paces here
        # and always at least the intra share
        assert t >= 1e8 * (1 - cross) / (self.INTRA.bandwidth * 0.6)

    def test_spanning_ring_prices_at_inter_tier(self):
        local = tiered_ring_time(1e9, 8, 8, self.INTRA, self.INTER)
        spanning = tiered_ring_time(1e9, 16, 8, self.INTRA, self.INTER)
        assert local == pytest.approx(
            ring_all_gather_time(1e9, 8, self.INTRA))
        assert spanning == pytest.approx(
            ring_all_gather_time(1e9, 16, self.INTER))
        assert spanning > local

    def test_kernel_model_legacy_parity_when_group_fits(self):
        """cluster=None and a node-local cluster price identically."""
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        perf_legacy = MegaScalePerfModel()
        perf_tiered = MegaScalePerfModel(cluster=c)
        par = ParallelConfig.megascale(8, 1, 2)
        train = TrainConfig(global_batch_size=16)
        a = perf_legacy.iteration(MIXTRAL, par, train, H800)
        b = perf_tiered.iteration(MIXTRAL, par, train,
                                  c.bottleneck_gpu())
        assert a.iteration_time == pytest.approx(b.iteration_time)

    def test_spanning_mp_group_costs_more(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=16)
        local = MegaScalePerfModel(cluster=c).iteration(
            MIXTRAL, ParallelConfig.megascale(8, 1, 2), train, H800)
        spanning = MegaScalePerfModel(cluster=c).iteration(
            MIXTRAL, ParallelConfig.megascale(16, 1, 1), train, H800)
        assert spanning.exposed_comm_time > local.exposed_comm_time
        assert spanning.iteration_time > local.iteration_time


# ---------------------------------------------------------------------------
# Enumerator + feasibility
# ---------------------------------------------------------------------------


class TestEnumerator:
    def test_candidates_respect_divisibility(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=2)
        for cand in enumerate_plans(SMALL, c, train):
            par = cand.parallel
            n = par.model_parallel_size
            assert par.total_gpus == c.n_gpus
            assert SMALL.n_layers % par.pipeline_size == 0
            assert 64 % (par.data_parallel_size * 2) == 0
            if par.attention == "sp":
                assert SMALL.n_heads % n == 0
                assert SMALL.n_kv_heads % n == 0
            if par.ffn == "ep":
                assert SMALL.n_experts % n == 0

    def test_non_divisible_heads_exclude_sp(self):
        model = ModelConfig("odd-heads", 4, 96, 6, 2, 128, 8, 2,
                            vocab_size=256, seq_len=64)
        c = ClusterSpec.homogeneous("h800", n_nodes=1, gpus_per_node=4)
        train = TrainConfig(global_batch_size=16, micro_batch_size=1)
        plans = enumerate_plans(model, c, train)
        assert plans  # n=1 and n=2 still legal
        assert all(p.parallel.model_parallel_size != 4
                   or p.parallel.attention != "sp" for p in plans)

    def test_non_divisible_experts_exclude_ep(self):
        model = ModelConfig("odd-experts", 4, 64, 8, 2, 128, 6, 2,
                            vocab_size=256, seq_len=64)
        c = ClusterSpec.homogeneous("h800", n_nodes=1, gpus_per_node=4)
        train = TrainConfig(global_batch_size=16, micro_batch_size=1)
        plans = enumerate_plans(model, c, train)
        assert all(p.parallel.ffn != "ep" for p in plans
                   if p.parallel.model_parallel_size == 4)

    def test_coprime_nodes_and_layers_limit_pp(self):
        """n_layers=7 coprime with nodes=4: PP in {1, 7} only."""
        model = ModelConfig("coprime", 7, 64, 8, 2, 128, 8, 2,
                            vocab_size=256, seq_len=64)
        c = ClusterSpec.homogeneous("h800", n_nodes=4,
                                    gpus_per_node=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=1)
        pps = {p.parallel.pipeline_size
               for p in enumerate_plans(model, c, train)}
        assert pps <= {1, 7}

    def test_single_node_cluster_plans(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=1)
        train = TrainConfig(global_batch_size=32, micro_batch_size=2)
        result = plan_cluster(SMALL, c, train)
        assert result.best.cross_node_a2a_bytes == 0.0
        assert result.best.candidate.parallel.total_gpus == 8

    def test_memory_infeasible_raises_typed_error(self):
        c = ClusterSpec.homogeneous("v100", n_nodes=1)
        train = TrainConfig(global_batch_size=32, micro_batch_size=2)
        with pytest.raises(NoFeasiblePlan) as exc:
            plan_cluster(MODEL_ZOO["internal-352b"], c, train)
        assert exc.value.n_enumerated > 0

    def test_infeasible_is_runtime_error_subclass(self):
        assert issubclass(NoFeasiblePlan, RuntimeError)

    def test_candidate_validation(self):
        with pytest.raises(ValueError, match="precision"):
            PlanCandidate(ParallelConfig.megascale(8), precision="int4")
        with pytest.raises(ValueError, match="remat"):
            PlanCandidate(ParallelConfig.megascale(8), remat="full")


# ---------------------------------------------------------------------------
# Plan search: MegaScale reproduction + MoNTA preference
# ---------------------------------------------------------------------------


class TestPlanSearch:
    def test_reproduces_megascale_choice_on_h800_nodes(self):
        """Paper's 8×H800 node shape → SP attention, EP FFN, a2a."""
        c = ClusterSpec.homogeneous("h800", n_nodes=4, gpus_per_node=8)
        train = TrainConfig(global_batch_size=512, micro_batch_size=2)
        result = plan_cluster(MIXTRAL, c, train)
        best = result.best.candidate.parallel
        assert best.attention == "sp"
        assert best.ffn == "ep"
        # top-k=2 on EP size 8 sits left of the Fig. 7 crossover.
        assert best.ep_dispatch == "a2a"
        assert best.model_parallel_size == 8
        assert result.best.cross_node_a2a_bytes == 0.0

    def test_monta_prefers_low_cross_node_traffic(self):
        """Two-tier cluster: winner keeps dispatch inside the node and
        provably beats the node-spanning EP alternative."""
        c = ClusterSpec.homogeneous("h800", n_nodes=4, gpus_per_node=4)
        train = TrainConfig(global_batch_size=512, micro_batch_size=2)
        result = plan_cluster(SMALL, c, train)
        assert result.best.cross_node_a2a_bytes == 0.0
        assert not c.spans_nodes(
            result.best.candidate.parallel.model_parallel_size)

        # Price the node-spanning EP-8 plan explicitly: more cross-node
        # a2a bytes AND a slower simulated iteration.
        spanning = PlanCandidate(
            parallel=ParallelConfig(
                model_parallel_size=8, attention="sp", ffn="ep",
                ep_dispatch="a2a", pipeline_size=1,
                data_parallel_size=c.n_gpus // 8),
            precision=result.best.candidate.precision,
            remat=result.best.candidate.remat)
        cross = _cross_node_a2a_bytes(SMALL, c, spanning, train)
        assert cross > result.best.cross_node_a2a_bytes
        perf = MegaScalePerfModel(
            cluster=c,
            selective_remat=spanning.remat == "selective",
            elem_bytes=spanning.elem_bytes)
        it = perf.iteration(SMALL, spanning.parallel, train,
                            c.bottleneck_gpu())
        assert it.iteration_time > result.best.iteration_time

    def test_search_result_explain_mentions_key_facts(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=2)
        result = plan_cluster(SMALL, c, train)
        text = result.explain()
        assert "scale-up ratio" in text
        assert "strategy =" in text
        assert "simulated iteration time" in text
        assert result.n_feasible <= result.n_enumerated
        assert result.n_simulated >= len(result.ranked)

    def test_search_is_deterministic(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=2)
        a = plan_cluster(SMALL, c, train)
        b = plan_cluster(SMALL, c, train)
        assert a.best.candidate == b.best.candidate
        assert [s.candidate for s in a.ranked] == \
            [s.candidate for s in b.ranked]

    def test_calibration_scales_prices(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=2)
        base = plan_cluster(SMALL, c, train)
        report = CalibrationReport()  # empty → median scale 1.0
        same = plan_cluster(SMALL, c, train, calibration=report)
        assert same.best.iteration_time == pytest.approx(
            base.best.iteration_time)


# ---------------------------------------------------------------------------
# fp8 dispatch crossover (§5 + Fig. 7)
# ---------------------------------------------------------------------------


class TestPrecisionCrossover:
    def test_fp8_shifts_crossover_down(self):
        model = MODEL_ZOO["phi-3.5-moe"]
        bf16 = dispatch_crossover_top_k(model, 8, LINK,
                                        precision="bf16")
        fp8 = dispatch_crossover_top_k(model, 8, LINK, precision="fp8")
        assert bf16 == 5
        assert fp8 == 3
        assert fp8 < bf16

    def test_default_matches_bf16(self):
        model = MODEL_ZOO["phi-3.5-moe"]
        assert dispatch_crossover_top_k(model, 8, LINK) == \
            dispatch_crossover_top_k(model, 8, LINK, precision="bf16")

    def test_fp8_cheapens_rings_not_a2a(self):
        model = MODEL_ZOO["phi-3.5-moe"]
        bf16 = dispatch_mode_times(model, 2, 8, LINK, precision="bf16")
        fp8 = dispatch_mode_times(model, 2, 8, LINK, precision="fp8")
        assert fp8["ag"] < bf16["ag"]
        assert fp8["rs"] < bf16["rs"]
        assert fp8["a2a"] == pytest.approx(bf16["a2a"])

    def test_fp32_scales_everything(self):
        model = MODEL_ZOO["phi-3.5-moe"]
        bf16 = dispatch_mode_times(model, 2, 8, LINK, precision="bf16")
        fp32 = dispatch_mode_times(model, 2, 8, LINK, precision="fp32")
        assert fp32["a2a"] > bf16["a2a"]
        assert fp32["ag"] > bf16["ag"]


# ---------------------------------------------------------------------------
# Search layer: deterministic tie-breaks + composed plan/schedule search
# ---------------------------------------------------------------------------


class TestScheduleSearch:
    def tasks(self):
        return [
            SimTask("b", 1.0, "compute"),
            SimTask("a", 1.0, "compute"),
            SimTask("c", 1.0, "compute", deps=("a", "b")),
        ]

    def test_equal_priorities_tie_break_by_name(self):
        out = _reorder_by_priority(self.tasks(), {})
        assert [t.name for t in out] == ["a", "b", "c"]

    def test_tie_break_is_insertion_order_independent(self):
        rev = list(reversed(self.tasks()[:2])) + self.tasks()[2:]
        a = _reorder_by_priority(self.tasks(), {"a": 0.0, "b": 0.0})
        b = _reorder_by_priority(rev, {"a": 0.0, "b": 0.0})
        assert [t.name for t in a] == [t.name for t in b]

    def test_optimize_plan_composes(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=2)
        result = optimize_plan(SMALL, c, train, budget=20, seed=0)
        assert result.plan.best is not None
        # By construction never worse than the holistic baseline.
        assert result.fwd.makespan <= result.fwd.baseline_makespan
        assert result.bwd.makespan <= result.bwd.baseline_makespan
        assert 0.0 <= result.layer_gain < 1.0
        assert not result.calibrated

    def test_optimize_plan_accepts_spans(self):
        from repro.obs import Span
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=2)
        # A single span anchors the whole-graph median scale at ~2x.
        feas = enumerate_plans(SMALL, c, train)
        from repro.core.operators import build_forward_graph
        graph = build_forward_graph(SMALL, feas[0].parallel, 2,
                                    feas[0].elem_bytes)
        km = KernelModel(
            c.bottleneck_gpu(), cluster=c,
            mp_group_size=feas[0].parallel.model_parallel_size)
        first = next(iter(graph))
        span = Span(name=f"dag.op:{first.name}", start=0.0,
                    end=2.0 * km.op_duration(first),
                    attrs={"ops": first.name})
        result = optimize_plan(SMALL, c, train, budget=5, seed=0,
                               spans=[span])
        assert result.calibrated

    def test_seeded_search_is_reproducible(self):
        c = ClusterSpec.homogeneous("h800", n_nodes=2)
        train = TrainConfig(global_batch_size=64, micro_batch_size=2)
        a = optimize_plan(SMALL, c, train, budget=15, seed=3)
        b = optimize_plan(SMALL, c, train, budget=15, seed=3)
        assert a.fwd.makespan == b.fwd.makespan
        assert [t.name for t in a.fwd.tasks] == \
            [t.name for t in b.fwd.tasks]
