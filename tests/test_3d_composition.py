"""Tests for the 3D composition: pipeline × model parallelism × data
parallelism — the full Fig. 4 design space, numerically."""

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig
from repro.model import MoETransformer
from repro.parallel.pp_engine import PipelineParallelTrainer
from repro.precision.optimizer import AdamW, clip_grad_norm

CONFIG = ModelConfig("t3d", n_layers=4, hidden_size=16, n_heads=4,
                     gqa_ratio=2, ffn_hidden_size=24, n_experts=4,
                     top_k=2, vocab_size=32, seq_len=8)


def reference_step(batch, n_micro, lr=1e-2):
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    opt = AdamW(model.parameters(), lr=lr)
    model.zero_grad()
    total = None
    for micro in np.split(batch, n_micro):
        loss = model.language_model_loss(micro, aux_coeff=0.01)
        total = loss if total is None else total + loss
    total = total * (1.0 / n_micro)
    total.backward()
    clip_grad_norm(model.parameters(), 1.0)
    opt.step()
    return model, total.item()


class TestPPxMP:
    @pytest.mark.parametrize("attn,ffn", [
        ("sp", "ep"), ("tp", "tp"), ("sp", "tp"), ("tp", "ep"),
    ])
    def test_matches_reference(self, rng, attn, ffn):
        batch = rng.integers(0, 32, (4, 9))
        ref_model, ref_loss = reference_step(batch, 2)

        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        trainer = PipelineParallelTrainer(
            model, World(2, 1), 2,
            optimizer=AdamW(model.parameters(), lr=1e-2),
            aux_loss_coeff=0.01,
            mp_world=World(2, 2), mp_attention=attn, mp_ffn=ffn)
        result = trainer.train_step(batch)
        assert result.loss == pytest.approx(ref_loss, abs=1e-10)
        for (name, a), (_, b) in zip(ref_model.named_parameters(),
                                     model.named_parameters()):
            np.testing.assert_allclose(b.data, a.data, atol=1e-10,
                                       err_msg=f"{name} ({attn}+{ffn})")

    def test_multi_step_trajectory(self, rng):
        from repro.data import MarkovCorpus, batch_iterator
        corpus = MarkovCorpus(vocab_size=32, seed=2)
        batches = list(batch_iterator(corpus, 4, 8, seed=3, limit=4))

        ref_model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        ref_opt = AdamW(ref_model.parameters(), lr=1e-2)
        ref_losses = []
        for batch in batches:
            ref_model.zero_grad()
            total = None
            for micro in np.split(batch, 2):
                loss = ref_model.language_model_loss(micro,
                                                     aux_coeff=0.01)
                total = loss if total is None else total + loss
            total = total * 0.5
            total.backward()
            clip_grad_norm(ref_model.parameters(), 1.0)
            ref_opt.step()
            ref_losses.append(total.item())

        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        trainer = PipelineParallelTrainer(
            model, World(2, 1), 2,
            optimizer=AdamW(model.parameters(), lr=1e-2),
            aux_loss_coeff=0.01, mp_world=World(2, 2))
        losses = [trainer.train_step(b).loss for b in batches]
        np.testing.assert_allclose(losses, ref_losses, atol=1e-9)

    def test_mp_comm_recorded_in_mp_world(self, rng):
        batch = rng.integers(0, 32, (4, 9))
        mp_world = World(2, 2)
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        trainer = PipelineParallelTrainer(
            model, World(2, 1), 2, mp_world=mp_world,
            aux_loss_coeff=0.01)
        trainer.train_step(batch)
        counts = mp_world.ledger.counts()
        assert counts.get("all_to_all", 0) > 0  # SP/EP traffic

    def test_seq_divisibility_enforced(self, rng):
        model = MoETransformer(
            CONFIG.scaled(seq_len=9), seed=0, dtype=np.float64)
        trainer = PipelineParallelTrainer(
            model, World(2, 1), 1, mp_world=World(2, 2))
        with pytest.raises(ValueError, match="not divisible by MP"):
            trainer.train_step(rng.integers(0, 32, (2, 10)))
