"""Tests for parallelism planning and the Fig. 7 dispatch analysis."""

import pytest

from repro.comm.cost import LinkSpec
from repro.core.config import GPU_SPECS, MODEL_ZOO, ModelConfig
from repro.core.planner import (
    dispatch_crossover_top_k,
    dispatch_mode_times,
    plan_parallelism,
)

H800 = GPU_SPECS["h800"]
NVLINK = LinkSpec(bandwidth=200e9, latency=1e-5, a2a_efficiency=0.6)


class TestPlanParallelism:
    def test_megascale_choice_for_paper_models(self):
        """The planner picks SP+EP for every Table 2 model on 8-GPU
        nodes — the §3 configuration."""
        for name in ("internal-352b", "mixtral-8x7b", "mixtral-8x22b",
                     "phi-3.5-moe"):
            plan = plan_parallelism(MODEL_ZOO[name], n_gpus=64, gpu=H800)
            assert plan.parallel.attention == "sp", name
            assert plan.parallel.ffn == "ep", name

    def test_tp_fallback_for_odd_heads(self):
        model = ModelConfig("odd", 2, 24, 6, 2, 32, 8, 2)
        plan = plan_parallelism(model, n_gpus=8, gpu=H800)
        assert plan.parallel.attention == "tp"
        assert "do not divide" in plan.rationale["attention"]

    def test_tp_fallback_for_odd_experts(self):
        model = ModelConfig("odd-e", 2, 32, 8, 2, 32, 6, 2)
        plan = plan_parallelism(model, n_gpus=8, gpu=H800)
        assert plan.parallel.ffn == "tp"

    def test_pipeline_covers_gpus(self):
        model = MODEL_ZOO["internal-352b"]  # 60 layers
        plan = plan_parallelism(model, n_gpus=960, gpu=H800)
        pc = plan.parallel
        assert pc.total_gpus == 960
        assert model.n_layers % pc.pipeline_size == 0

    def test_explicit_pipeline_size(self):
        model = MODEL_ZOO["internal-352b"]
        plan = plan_parallelism(model, n_gpus=960, gpu=H800,
                                pipeline_size=15)
        assert plan.parallel.pipeline_size == 15
        assert plan.parallel.data_parallel_size == 8

    def test_dispatch_mode_by_top_k(self):
        small_k = plan_parallelism(MODEL_ZOO["mixtral-8x7b"], 8, H800)
        big_k = plan_parallelism(MODEL_ZOO["deepseekmoe"], 8, H800)
        assert small_k.parallel.ep_dispatch == "a2a"     # top-2
        assert big_k.parallel.ep_dispatch == "ag_rs"     # top-6

    def test_gpu_count_validation(self):
        with pytest.raises(ValueError, match="not divisible"):
            plan_parallelism(MODEL_ZOO["mixtral-8x7b"], 9, H800)

    def test_explain_mentions_ratio(self):
        plan = plan_parallelism(MODEL_ZOO["mixtral-8x7b"], 8, H800)
        text = plan.explain()
        assert "scale-up ratio" in text
        assert plan.scale_up_ratio > 1.0


class TestDispatchModeTimes:
    def test_a2a_grows_with_k(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        t2 = dispatch_mode_times(model, 2, 8, NVLINK)["a2a"]
        t8 = dispatch_mode_times(model, 8, 8, NVLINK)["a2a"]
        # 4× the bytes; the fixed latency term dilutes the ratio a bit.
        assert t8 > t2 * 2.5

    def test_ag_rs_independent_of_k(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        t2 = dispatch_mode_times(model, 2, 8, NVLINK)
        t8 = dispatch_mode_times(model, 8, 8, NVLINK)
        assert t2["ag"] == t8["ag"]
        assert t2["rs"] == t8["rs"]

    def test_fig7_crossover_band(self):
        """Fig. 7: on Mixtral-8×7B with 8 ranks, AG/RS overtakes A2A
        around top-k ≈ 6."""
        model = MODEL_ZOO["mixtral-8x7b"]
        crossover = dispatch_crossover_top_k(model, 8, NVLINK)
        assert 4 <= crossover <= 8

    def test_crossover_never_for_tiny_k_range(self):
        """With a perfect-efficiency A2A link the crossover moves to
        k = n (pure volume argument)."""
        model = MODEL_ZOO["mixtral-8x7b"]
        perfect = LinkSpec(bandwidth=200e9, latency=0.0,
                           a2a_efficiency=1.0)
        crossover = dispatch_crossover_top_k(model, 8, perfect)
        assert crossover == 8

    def test_low_a2a_efficiency_moves_crossover_down(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        bad_a2a = LinkSpec(bandwidth=200e9, latency=1e-5,
                           a2a_efficiency=0.3)
        assert dispatch_crossover_top_k(model, 8, bad_a2a) < \
            dispatch_crossover_top_k(model, 8, NVLINK)
