"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_config():
    """A model small enough for exhaustive numerical tests."""
    return ModelConfig("tiny", n_layers=2, hidden_size=32, n_heads=8,
                       gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                       top_k=2, vocab_size=64, seq_len=16)


@pytest.fixture
def world4():
    """A 4-rank single-node world."""
    return World(4, ranks_per_node=4)


@pytest.fixture
def world8():
    """An 8-rank world split over two 4-rank nodes."""
    return World(8, ranks_per_node=4)


def gradcheck(fn, arrays, rng, eps=1e-5, tol=1e-4):
    """Central-difference gradient check of ``fn(*tensors) -> Tensor``.

    ``arrays`` are float64 numpy inputs; every entry is treated as
    requiring grad.  Returns the max absolute error across all inputs.
    """
    tensors = [Tensor(a.astype(np.float64), requires_grad=True)
               for a in arrays]
    out = fn(*tensors)
    g_out = rng.standard_normal(out.shape)
    out.backward(g_out)

    worst = 0.0
    for which, base in enumerate(arrays):
        analytic = tensors[which].grad
        assert analytic is not None, f"input {which} got no gradient"
        numeric = np.zeros_like(base, dtype=np.float64)
        for i in range(base.size):
            def value(shift):
                probes = [Tensor(a.astype(np.float64)) for a in arrays]
                probes[which].data.flat[i] += shift
                return float((fn(*probes).data * g_out).sum())
            numeric.flat[i] = (value(eps) - value(-eps)) / (2 * eps)
        worst = max(worst, float(np.abs(numeric - analytic).max()))
    assert worst < tol, f"gradcheck failed: max error {worst}"
    return worst


def assert_allclose(a, b, tol=1e-10, msg=""):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    err = np.abs(a - b).max() if a.size else 0.0
    assert err <= tol, f"{msg} max err {err} > {tol}"
