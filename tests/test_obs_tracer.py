"""Tracer, metrics-registry, and bounded-ledger unit tests."""

import numpy as np
import pytest

from repro.comm.group import CommLedger, CommRecord, World
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.sim import SimTask, simulate


class FakeClock:
    """Deterministic clock: every read advances one second."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestSpans:
    def test_nesting_links(self):
        t = Tracer(clock=FakeClock())
        outer = t.begin("outer")
        inner = t.begin("inner")
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        t.end(inner)
        t.end(outer)
        assert outer.closed and inner.closed
        assert inner.start >= outer.start
        assert inner.end <= outer.end

    def test_context_manager(self):
        t = Tracer(clock=FakeClock())
        with t.span("step", phase="step") as s:
            assert t.current() is s
        assert s.closed and s.phase == "step"
        assert t.open_depth == 0

    def test_exception_unwinds(self):
        t = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                t.begin("inner")  # never explicitly closed
                raise RuntimeError("boom")
        # Closing the outer span closed the abandoned inner one too.
        assert t.open_depth == 0
        assert all(s.closed for s in t.spans)

    def test_end_outer_closes_inner(self):
        t = Tracer(clock=FakeClock())
        outer = t.begin("outer")
        inner = t.begin("inner")
        t.end(outer)
        assert inner.closed and outer.closed
        assert t.open_depth == 0

    def test_annotate_hits_innermost(self):
        t = Tracer(clock=FakeClock())
        t.begin("outer")
        inner = t.begin("inner")
        t.annotate(bytes=123.0)
        assert inner.attrs["bytes"] == 123.0
        t.end()
        t.end()

    def test_end_attrs_merge(self):
        t = Tracer(clock=FakeClock())
        s = t.begin("comm", op="all_gather")
        t.end(s, bytes=64.0)
        assert s.attrs == {"op": "all_gather", "bytes": 64.0}

    def test_disabled_is_noop(self):
        t = Tracer(enabled=False)
        assert t.begin("x") is None
        assert t.instant("y") is None
        with t.span("z") as s:
            assert s is None
        assert t.spans == [] and t.events == []

    def test_children_of(self):
        t = Tracer(clock=FakeClock())
        outer = t.begin("outer")
        a = t.begin("a")
        t.end(a)
        b = t.begin("b")
        t.end(b)
        t.end(outer)
        assert t.children_of(outer) == [a, b]

    def test_instant_event(self):
        t = Tracer(clock=FakeClock())
        e = t.instant("checkpoint", cat="runner", step=4)
        assert e.ts == 1.0
        assert e.attrs == {"step": 4}
        assert t.events == [e]

    def test_closed_spans_filters(self):
        t = Tracer(clock=FakeClock())
        with t.span("a", cat="comm"):
            pass
        with t.span("b", cat="comm.p2p"):
            pass
        t.begin("open", cat="comm")
        assert len(t.closed_spans()) == 2
        assert len(t.closed_spans(cat="comm")) == 2  # prefix match
        assert t.closed_spans(cat="train") == []

    def test_clear(self):
        t = Tracer(clock=FakeClock())
        t.begin("a")
        t.instant("e")
        t.clear()
        assert t.spans == [] and t.events == [] and t.open_depth == 0


class TestTimelineIngestion:
    def test_sim_records_become_closed_spans(self):
        tasks = [
            SimTask("gemm", 2.0, "compute"),
            SimTask("a2a", 1.0, "comm", deps=("gemm",), is_comm=True),
        ]
        t = Tracer(clock=FakeClock())
        timeline = simulate(tasks, tracer=t, trace_pid="sim")
        spans = t.closed_spans(pid="sim")
        assert len(spans) == 2
        by_name = {s.name: s for s in spans}
        assert by_name["gemm"].cat == "sim.compute"
        assert by_name["a2a"].cat == "sim.comm"
        # Simulated clock, not the tracer's wall clock.
        record = timeline.record_of("a2a")
        assert by_name["a2a"].start == record.start
        assert by_name["a2a"].end == record.end

    def test_untraced_simulate_unchanged(self):
        timeline = simulate([SimTask("x", 1.0, "s")])
        assert timeline.makespan == 1.0


class TestMetrics:
    def test_counter_monotonic(self):
        m = MetricsRegistry()
        m.inc("steps")
        m.inc("steps", 2.0)
        assert m.counter("steps").value == 3.0
        with pytest.raises(ValueError):
            m.inc("steps", -1.0)

    def test_gauge(self):
        m = MetricsRegistry()
        m.set("loss", 4.5)
        m.set("loss", 4.0)
        assert m.gauge("loss").value == 4.0
        assert m.gauge("loss").updates == 2

    def test_histogram_summary(self):
        m = MetricsRegistry()
        for v in [1.0, 2.0, 3.0, 4.0]:
            m.observe("loss", v)
        h = m.histogram("loss")
        assert h.count == 4
        assert h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0

    def test_histogram_reservoir_bounded(self):
        m = MetricsRegistry()
        h = m.histogram("x", reservoir_size=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert len(h._reservoir) == 8
        assert h.min == 0.0 and h.max == 99.0
        # Percentiles come from the newest values only.
        assert h.percentile(0) == 92.0

    def test_snapshot_flat(self):
        m = MetricsRegistry()
        m.inc("steps")
        m.set("loss", 2.0)
        m.observe("h", 1.0)
        snap = m.snapshot()
        assert snap["steps"] == 1.0
        assert snap["loss"] == 2.0
        assert snap["h.count"] == 1.0 and snap["h.mean"] == 1.0

    def test_ingest_ledger(self):
        ledger = CommLedger()
        ledger.record(CommRecord("all_gather", 4, [8.0] * 4, "t"))
        ledger.record(CommRecord("all_to_all", 4, [2.0] * 4, "t"))
        m = MetricsRegistry()
        m.ingest_ledger(ledger)
        snap = m.snapshot()
        assert snap["comm.bytes.total"] == 40.0
        assert snap["comm.calls.total"] == 2.0
        assert snap["comm.bytes.all_gather"] == 32.0
        assert snap["comm.calls.all_to_all"] == 1.0

    def test_render(self):
        m = MetricsRegistry()
        m.inc("steps", 3)
        text = m.render("demo")
        assert "demo" in text and "steps" in text and "3" in text

    def test_observability_bundle(self):
        obs = Observability.create(clock=FakeClock())
        assert isinstance(obs.tracer, Tracer)
        assert isinstance(obs.metrics, MetricsRegistry)


def _fill(ledger, n, op="all_gather", tag="t", group=4, per_rank=8.0):
    for _ in range(n):
        ledger.record(CommRecord(op, group, [per_rank] * group, tag))


class TestBoundedLedger:
    def test_unbounded_by_default(self):
        ledger = CommLedger()
        _fill(ledger, 100)
        assert len(ledger.records) == 100
        assert ledger.dropped == 0

    def test_rotation_keeps_newest(self):
        ledger = CommLedger(max_records=5)
        for i in range(12):
            ledger.record(CommRecord("ag", 2, [float(i)] * 2, f"c{i}"))
        assert len(ledger.records) == 5
        assert ledger.dropped == 7
        assert ledger.record_count == 12
        assert [r.tag for r in ledger.records] == \
            [f"c{i}" for i in range(7, 12)]

    def test_totals_exact_across_rotation(self):
        bounded = CommLedger(max_records=3)
        unbounded = CommLedger()
        for i in range(20):
            rec = CommRecord("ag" if i % 2 else "rs", 4,
                             [float(i + 1)] * 4, f"tag{i % 3}")
            bounded.record(rec)
            unbounded.record(rec)
        assert bounded.total_bytes() == unbounded.total_bytes()
        assert bounded.total_bytes(op="ag") == unbounded.total_bytes(op="ag")
        assert bounded.total_bytes(tag="tag1") == \
            unbounded.total_bytes(tag="tag1")
        assert bounded.per_rank_bytes(op="rs") == \
            unbounded.per_rank_bytes(op="rs")
        assert bounded.counts() == unbounded.counts()

    def test_clear_resets_rotation_state(self):
        ledger = CommLedger(max_records=2)
        _fill(ledger, 10)
        ledger.clear()
        assert ledger.total_bytes() == 0.0
        assert ledger.dropped == 0 and ledger.rolled == {}
        assert ledger.record_count == 0

    def test_invalid_max_records(self):
        with pytest.raises(ValueError):
            CommLedger(max_records=0)

    def test_world_plumbs_bound(self):
        world = World(4, 4, max_ledger_records=6)
        g = world.full_group()
        for i in range(10):
            g.record("all_gather", [1.0] * 4, tag=f"x{i}")
        assert len(world.ledger.records) == 6
        assert world.ledger.total_bytes() == 40.0

    def test_bounded_ledger_under_training(self):
        # A real traced engine run stays exact under aggressive rotation.
        from repro.model.moe import MoELayer
        from repro.parallel.ep_ffn import EPFFNEngine
        from repro.tensor import Tensor

        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 16, 32))

        def run(world):
            moe = MoELayer(rng_init, 32, 48, 8, 2, dtype=np.float64)
            engine = EPFFNEngine(world.full_group(), moe, mode="ag_rs")
            shards = [Tensor(x[:, r * 4:(r + 1) * 4].copy())
                      for r in range(4)]
            engine.forward(shards)
            return world.ledger

        rng_init = np.random.default_rng(1)
        full = run(World(4, 4))
        rng_init = np.random.default_rng(1)
        bounded = run(World(4, 4, max_ledger_records=1))
        assert bounded.dropped > 0
        assert bounded.total_bytes() == full.total_bytes()
        assert bounded.counts() == full.counts()
