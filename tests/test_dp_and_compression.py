"""Tests for DP gradient sync, compression (§5), and ZeRO accounting."""

import numpy as np
import pytest

from repro.comm import World
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.parallel.dp import DataParallelTrainer, zero1_memory_model
from repro.precision.compression import (
    InPlaceCastBuffer,
    fp8_compressed_all_gather,
    fp8_compressed_reduce_scatter,
    sync_gradients,
)
from repro.precision.formats import round_bf16
from repro.precision.optimizer import AdamW


class TestSyncGradients:
    def test_fp32_exact(self, rng, world4):
        g = world4.full_group()
        grads = [rng.standard_normal((5, 3)) for _ in range(4)]
        outs = sync_gradients(g, grads, method="fp32_rs")
        expected = np.mean(grads, axis=0)
        for out in outs:
            np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_bf16_a2a_single_rounding(self, rng, world4):
        """The compressed result equals mean(round_bf16(g_r)) computed in
        FP64 — exactly one rounding per rank, no repeated-accumulation
        error (the Fig. 10 design)."""
        g = world4.full_group()
        grads = [rng.standard_normal((8,)) for _ in range(4)]
        outs = sync_gradients(g, grads, method="bf16_a2a")
        exact_sum = np.mean([round_bf16(x) for x in grads], axis=0)
        # One more BF16 rounding happens on the reduced shard before the
        # final all-gather.
        expected = round_bf16(exact_sum * 4) / 4
        for out in outs:
            np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_bf16_a2a_close_to_fp32(self, rng, world4):
        g = world4.full_group()
        grads = [rng.standard_normal((64,)) for _ in range(4)]
        exact = sync_gradients(g, grads, method="fp32_rs")[0]
        compressed = sync_gradients(g, grads, method="bf16_a2a")[0]
        rel = np.abs(compressed - exact) / (np.abs(exact) + 1e-12)
        assert np.median(rel) < 2 ** -7

    def test_ring_bf16_worse_than_a2a(self, world4):
        """Repeated BF16 accumulation (ring) loses more precision than
        the single-rounding A2A design — the paper's §5 rationale."""
        rng = np.random.default_rng(0)
        errors = {"bf16_a2a": [], "bf16_ring_rs": []}
        for trial in range(30):
            grads = [rng.standard_normal((64,)) for _ in range(4)]
            exact = sync_gradients(world4.full_group(), grads,
                                   method="fp32_rs")[0]
            for method in errors:
                approx = sync_gradients(world4.full_group(), grads,
                                        method=method)[0]
                errors[method].append(np.abs(approx - exact).mean())
        assert np.mean(errors["bf16_a2a"]) <= \
            np.mean(errors["bf16_ring_rs"])

    def test_wire_bytes_halved(self, rng, world4):
        g = world4.full_group()
        grads = [rng.standard_normal((64,)) for _ in range(4)]
        world4.ledger.clear()
        sync_gradients(g, grads, method="fp32_rs")
        fp32_bytes = world4.ledger.total_bytes()
        world4.ledger.clear()
        sync_gradients(g, grads, method="bf16_a2a")
        bf16_bytes = world4.ledger.total_bytes()
        assert bf16_bytes == pytest.approx(fp32_bytes / 2.0)

    def test_padding_for_odd_sizes(self, rng, world4):
        g = world4.full_group()
        grads = [rng.standard_normal((7, 3)) for _ in range(4)]
        outs = sync_gradients(g, grads, method="fp32_rs")
        assert outs[0].shape == (7, 3)
        np.testing.assert_allclose(outs[0], np.mean(grads, axis=0))

    def test_sum_mode(self, rng, world4):
        g = world4.full_group()
        grads = [rng.standard_normal((4,)) for _ in range(4)]
        outs = sync_gradients(g, grads, method="fp32_rs", average=False)
        np.testing.assert_allclose(outs[0], np.sum(grads, axis=0))

    def test_unknown_method(self, rng, world4):
        with pytest.raises(ValueError, match="unknown method"):
            sync_gradients(world4.full_group(),
                           [np.zeros(4)] * 4, method="zfp")


class TestFP8Communication:
    def test_rs_close_to_exact(self, rng, world4):
        g = world4.full_group()
        tensors = [rng.standard_normal((8, 16)) for _ in range(4)]
        outs = fp8_compressed_reduce_scatter(g, tensors)
        exact = np.sum(tensors, axis=0)
        for j, out in enumerate(outs):
            ref = exact[j * 2:(j + 1) * 2]
            rel = np.abs(out - ref) / (np.abs(ref) + 1e-6)
            assert np.median(rel) < 0.1

    def test_rs_wire_bytes_are_fp8(self, rng, world4):
        g = world4.full_group()
        tensors = [rng.standard_normal((8, 16)) for _ in range(4)]
        world4.ledger.clear()
        fp8_compressed_reduce_scatter(g, tensors, tag="f8")
        rec = world4.ledger.records[-1]
        # Each rank sends 3 chunks of 2x16 elements at 1 byte each.
        assert rec.send_bytes_per_rank == [3 * 2 * 16 * 1.0] * 4

    def test_rs_reduction_in_fp32(self, rng, world4):
        """Summation happens after dequantization — adding n well-spread
        values must not saturate at the FP8 max."""
        g = world4.full_group()
        tensors = [np.full((4, 4), 300.0) for _ in range(4)]
        outs = fp8_compressed_reduce_scatter(g, tensors)
        assert outs[0].max() == pytest.approx(1200.0, rel=0.1)

    def test_rs_shape_validation(self, rng, world4):
        with pytest.raises(ValueError, match="not divisible"):
            fp8_compressed_reduce_scatter(
                world4.full_group(),
                [rng.standard_normal((6, 4))] * 4)

    def test_ag_roundtrip(self, rng, world4):
        g = world4.full_group()
        shards = [rng.standard_normal((32, 8)) for _ in range(4)]
        outs = fp8_compressed_all_gather(g, shards, group_size=16)
        full = np.concatenate(shards, axis=0)
        rel = np.abs(outs[0] - full) / (np.abs(full) + 1e-6)
        assert np.median(rel) < 0.1
        for out in outs[1:]:
            np.testing.assert_array_equal(out, outs[0])

    def test_ag_grouping_helps_drifting_gradients(self, rng, world4):
        g = world4.full_group()
        scale = (1.0 + np.arange(256) / 8.0)[:, None]
        shards = [rng.standard_normal((256, 4)) * scale for _ in range(4)]
        grouped = fp8_compressed_all_gather(g, shards, group_size=32)[0]
        ungrouped = fp8_compressed_all_gather(g, shards, group_size=0)[0]
        full = np.concatenate(shards, axis=0)
        assert np.abs(grouped - full)[:32].mean() < \
            np.abs(ungrouped - full)[:32].mean()


class TestInPlaceBuffer:
    def test_peak_halved(self):
        buf = InPlaceCastBuffer(fp32_bytes=1e9)
        assert buf.inplace_peak_bytes == 1e9
        assert buf.naive_peak_bytes == 2e9
        assert buf.savings_fraction == 0.5


class TestDataParallelTrainer:
    def make(self, config, world, method, aux=0.01):
        model = MoETransformer(config, seed=0, dtype=np.float64)
        opt = AdamW(model.parameters(), lr=1e-2)
        return DataParallelTrainer(
            model, world.full_group(), opt,
            lambda m, b: m.language_model_loss(b, aux_coeff=aux),
            sync_method=method, grad_clip=1.0)

    def test_fp32_matches_large_batch(self, tiny_config):
        """DP with exact sync equals training on the concatenated batch
        (the gradients average identically)."""
        corpus = MarkovCorpus(vocab_size=64, seed=2)
        world = World(2, 2)
        # aux=0: the balance loss is not linear in the batch split, so
        # only the LM loss admits the concatenated-batch identity.
        trainer = self.make(tiny_config, world, "fp32_rs", aux=0.0)
        batches = list(batch_iterator(corpus, 2, 16, limit=2))

        ref_model = MoETransformer(tiny_config, seed=0, dtype=np.float64)
        ref_opt = AdamW(ref_model.parameters(), lr=1e-2)
        from repro.precision.optimizer import clip_grad_norm
        big = np.concatenate(batches, axis=0)
        ref_model.zero_grad()
        # Average of per-batch losses == loss over concatenated batch
        # when batch sizes are equal.
        loss = ref_model.language_model_loss(big, aux_coeff=0.0)
        loss.backward()
        clip_grad_norm(ref_model.parameters(), 1.0)
        ref_opt.step()

        result = trainer.train_step(batches)
        assert result.mean_loss == pytest.approx(loss.item(), abs=1e-9)
        for (_, p_ref), (_, p_dp) in zip(ref_model.named_parameters(),
                                         trainer.model.named_parameters()):
            np.testing.assert_allclose(p_dp.data, p_ref.data, atol=1e-9)

    def test_compressed_close_to_exact(self, tiny_config):
        corpus = MarkovCorpus(vocab_size=64, seed=2)
        batches = list(batch_iterator(corpus, 2, 16, limit=6))
        losses = {}
        for method in ("fp32_rs", "bf16_a2a"):
            world = World(2, 2)
            trainer = self.make(tiny_config, world, method)
            curve = []
            for i in range(0, 6, 2):
                curve.append(trainer.train_step(batches[i:i + 2]).mean_loss)
            losses[method] = curve
        # Fig. 17: the two loss curves are nearly identical.
        diff = np.abs(np.array(losses["fp32_rs"])
                      - np.array(losses["bf16_a2a"]))
        assert diff.max() < 5e-3

    def test_batch_count_validation(self, tiny_config):
        world = World(2, 2)
        trainer = self.make(tiny_config, world, "fp32_rs")
        with pytest.raises(ValueError, match="rank batches"):
            trainer.train_step([np.zeros((1, 17), dtype=int)])

    def test_invalid_method(self, tiny_config):
        world = World(2, 2)
        model = MoETransformer(tiny_config, seed=0)
        with pytest.raises(ValueError, match="unknown sync"):
            DataParallelTrainer(model, world.full_group(),
                                AdamW(model.parameters()),
                                lambda m, b: None, sync_method="nope")

    def test_sync_bytes_reported(self, tiny_config, rng):
        world = World(2, 2)
        trainer = self.make(tiny_config, world, "fp32_rs")
        batches = [rng.integers(0, 64, (1, 17)) for _ in range(2)]
        result = trainer.train_step(batches)
        assert result.sync_bytes > 0


class TestZeRO1Memory:
    def test_sharding_reduces_optimizer_only(self):
        base = zero1_memory_model(1e9, dp_size=1)
        sharded = zero1_memory_model(1e9, dp_size=8)
        assert sharded["params"] == base["params"]
        assert sharded["grads"] == base["grads"]
        assert sharded["optimizer"] == pytest.approx(
            base["optimizer"] / 8)

    def test_total_consistent(self):
        m = zero1_memory_model(1e6, dp_size=4)
        assert m["total"] == pytest.approx(
            m["params"] + m["grads"] + m["optimizer"])

    def test_validation(self):
        with pytest.raises(ValueError):
            zero1_memory_model(1e6, dp_size=0)
