"""Cross-validation: the analytic hierarchical-sync pipelining model
(Appendix A.1, Fig. 5b) against an explicit chunked event simulation.

``hierarchical_sync_time(pipelined=True)`` approximates the overlap of
the four sync stages as ``max + 0.25 · rest``.  Here the same transfer
is simulated chunk by chunk on two resources (NVLink, NIC) with real
dependencies, and the approximation must bracket the simulated makespan.
"""

import pytest

from repro.comm.cost import (
    LinkSpec,
    hierarchical_sync_time,
    ring_all_gather_time,
    ring_reduce_scatter_time,
)
from repro.sim.engine import SimTask, simulate

INTRA = LinkSpec(bandwidth=200e9, latency=0.0)
INTER = LinkSpec(bandwidth=25e9, latency=0.0)


def simulate_chunked(param_bytes, n, d, chunks):
    """Fig. 5b: split the sync into chunks pipelined across the four
    stages; intra-node stages use the NVLink resource, inter-node the
    NIC."""
    stage_times = [
        ring_reduce_scatter_time(param_bytes, n, INTRA) / chunks,
        ring_reduce_scatter_time(param_bytes / n, d, INTER) / chunks,
        ring_all_gather_time(param_bytes / n, d, INTER) / chunks,
        ring_all_gather_time(param_bytes, n, INTRA) / chunks,
    ]
    streams = ["nvlink", "nic", "nic", "nvlink"]

    def task(c, s):
        deps = (f"c{c}s{s - 1}",) if s > 0 else ()
        return SimTask(name=f"c{c}s{s}", duration=stage_times[s],
                       stream=streams[s], deps=deps, is_comm=True)

    # Issue order matters: streams execute their queues in order, so
    # enqueue the NVLink stream as all stage-0 chunks then stage-3
    # chunks, and interleave the NIC stages per chunk — the order a
    # real chunked implementation issues.
    tasks = [task(c, 0) for c in range(chunks)]
    for c in range(chunks):
        tasks.append(task(c, 1))
        tasks.append(task(c, 2))
    tasks += [task(c, 3) for c in range(chunks)]
    return simulate(tasks).makespan


class TestHierarchicalPipelineCrossValidation:
    P = 512e6  # 512 MB of replicated attention parameters

    @pytest.mark.parametrize("n,d", [(8, 4), (8, 8), (4, 2)])
    def test_analytic_matches_simulation_at_same_chunking(self, n, d):
        """Closed form vs event simulation at the same chunk count."""
        for chunks in (4, 8, 32):
            analytic = hierarchical_sync_time(self.P, n, d, INTRA,
                                              INTER, pipelined=True,
                                              chunks=chunks)
            simulated = simulate_chunked(self.P, n, d, chunks=chunks)
            assert analytic == pytest.approx(simulated, rel=0.15), \
                (chunks, analytic, simulated)
        sequential = hierarchical_sync_time(self.P, n, d, INTRA, INTER,
                                            pipelined=False)
        assert hierarchical_sync_time(self.P, n, d, INTRA, INTER,
                                      pipelined=True) <= sequential

    def test_chunking_converges_to_bottleneck(self):
        """With many chunks the makespan approaches the bottleneck
        resource's busy time — the Fig. 5b overlap payoff."""
        n, d = 8, 4
        nvlink_busy = (ring_reduce_scatter_time(self.P, n, INTRA)
                       + ring_all_gather_time(self.P, n, INTRA))
        nic_busy = (ring_reduce_scatter_time(self.P / n, d, INTER)
                    + ring_all_gather_time(self.P / n, d, INTER))
        bottleneck = max(nvlink_busy, nic_busy)
        deep = simulate_chunked(self.P, n, d, chunks=128)
        assert deep == pytest.approx(bottleneck, rel=0.05)

    def test_single_chunk_equals_sequential(self):
        n, d = 8, 4
        single = simulate_chunked(self.P, n, d, chunks=1)
        sequential = hierarchical_sync_time(self.P, n, d, INTRA, INTER,
                                            pipelined=False)
        assert single == pytest.approx(sequential, rel=1e-9)

    def test_more_chunks_never_slower(self):
        n, d = 8, 4
        times = [simulate_chunked(self.P, n, d, chunks=c)
                 for c in (1, 2, 4, 16, 64)]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))
