"""Tests for hierarchical parameter synchronization (Appendix A.1)."""

import numpy as np
import pytest

from repro.comm import (
    World,
    flat_sync,
    hierarchical_inter_node_volume,
    hierarchical_intra_node_volume,
    hierarchical_sync,
    tp_inter_node_volume,
)


class TestHierarchicalSync:
    def test_all_ranks_get_full_sum(self, rng):
        world = World(8, ranks_per_node=4)  # n=4 replicas, d=2 nodes
        grads = [rng.standard_normal((4, 8)) for _ in range(8)]
        outs = hierarchical_sync(world, grads)
        expected = np.sum(grads, axis=0)
        for out in outs:
            np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_single_node(self, rng):
        world = World(4, ranks_per_node=4)
        grads = [rng.standard_normal((6,)) for _ in range(4)]
        outs = hierarchical_sync(world, grads)
        for out in outs:
            np.testing.assert_allclose(out, np.sum(grads, axis=0))

    def test_indivisible_numel_padded(self, rng):
        world = World(6, ranks_per_node=3)
        grads = [rng.standard_normal((7,)) for _ in range(6)]
        outs = hierarchical_sync(world, grads)
        for out in outs:
            assert out.shape == (7,)
            np.testing.assert_allclose(out, np.sum(grads, axis=0))

    def test_shape_preserved(self, rng):
        world = World(4, ranks_per_node=2)
        grads = [rng.standard_normal((3, 5, 2)) for _ in range(4)]
        outs = hierarchical_sync(world, grads)
        assert outs[0].shape == (3, 5, 2)

    def test_bad_world_shape(self, rng):
        world = World(6, ranks_per_node=4)
        with pytest.raises(ValueError, match="not divisible"):
            hierarchical_sync(world, [rng.standard_normal(4)] * 6)


class TestFlatSync:
    def test_tp_style_sum_across_nodes(self, rng):
        world = World(8, ranks_per_node=4)
        # TP shards: rank r on each node holds shard r; sync is across
        # same-local-rank peers only.
        grads = [rng.standard_normal((8,)) for _ in range(8)]
        outs = flat_sync(world, grads)
        for local in range(4):
            expected = grads[local] + grads[local + 4]
            np.testing.assert_allclose(outs[local], expected)
            np.testing.assert_allclose(outs[local + 4], expected)


class TestVolumes:
    def test_inter_node_volume_equal_sp_tp(self):
        """Appendix A.1's central claim: SP and TP attention have the
        same inter-node communication volume."""
        p, n, d = 1024.0, 8, 4
        assert hierarchical_inter_node_volume(p, n, d) == \
            pytest.approx(tp_inter_node_volume(p, n, d))

    def test_inter_volume_formula(self):
        assert hierarchical_inter_node_volume(800.0, 8, 4) == \
            pytest.approx(2 * 100.0 * 3 / 4)

    def test_intra_volume_formula(self):
        assert hierarchical_intra_node_volume(800.0, 8) == \
            pytest.approx(2 * 800.0 * 7 / 8)

    def test_single_replica_no_comm(self):
        assert hierarchical_intra_node_volume(100.0, 1) == 0.0
        assert hierarchical_inter_node_volume(100.0, 4, 1) == 0.0

    def test_measured_inter_node_volume_matches(self, rng):
        """The simulated sync moves exactly the analytic inter-node
        bytes per rank."""
        n, d = 4, 2
        world = World(n * d, ranks_per_node=n)
        numel = 16 * n * d
        grads = [rng.standard_normal(numel) for _ in range(n * d)]
        world.ledger.clear()
        hierarchical_sync(world, grads, elem_bytes=4.0)
        inter = sum(
            r.total_bytes for r in world.ledger.records
            if ":inter_" in r.tag
        ) / (n * d)  # per rank
        expected = hierarchical_inter_node_volume(numel * 4.0, n, d)
        assert inter == pytest.approx(expected)

    def test_measured_intra_node_volume_matches(self, rng):
        n, d = 4, 2
        world = World(n * d, ranks_per_node=n)
        numel = 16 * n * d
        grads = [rng.standard_normal(numel) for _ in range(n * d)]
        world.ledger.clear()
        hierarchical_sync(world, grads, elem_bytes=4.0)
        intra = sum(
            r.total_bytes for r in world.ledger.records
            if ":intra_" in r.tag
        ) / (n * d)
        expected = hierarchical_intra_node_volume(numel * 4.0, n)
        assert intra == pytest.approx(expected)

    def test_hierarchical_equals_flat_on_inter_bytes(self, rng):
        """SP's hierarchical sync and TP's flat sync move the same
        inter-node bytes — the Fig. 14 equivalence."""
        n, d = 4, 2
        world_sp = World(n * d, ranks_per_node=n)
        world_tp = World(n * d, ranks_per_node=n)
        numel = 32 * n * d
        grads = [rng.standard_normal(numel) for _ in range(n * d)]
        hierarchical_sync(world_sp, grads, elem_bytes=4.0)
        sp_inter = sum(r.total_bytes for r in world_sp.ledger.records
                       if ":inter_" in r.tag)
        # TP holds 1/n shards, replicated across d nodes.
        shards = [rng.standard_normal(numel // n) for _ in range(n * d)]
        flat_sync(world_tp, shards, elem_bytes=4.0)
        tp_inter = sum(r.total_bytes for r in world_tp.ledger.records
                       if ":inter_" in r.tag)
        assert sp_inter == pytest.approx(tp_inter)
