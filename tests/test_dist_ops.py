"""Tests for the differentiable collectives over per-rank Tensors."""

import numpy as np
import pytest

from repro.parallel.dist_ops import (
    dist_all_gather,
    dist_all_reduce,
    dist_all_to_all,
    dist_all_to_all_uneven,
    dist_reduce_scatter,
)
from repro.tensor import Tensor


def leaf_shards(rng, n, shape):
    return [Tensor(rng.standard_normal(shape), requires_grad=True)
            for _ in range(n)]


class TestDistAllGather:
    def test_forward(self, rng, world4):
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (2, 3))
        outs = dist_all_gather(g, shards, axis=0)
        full = np.concatenate([s.data for s in shards], axis=0)
        for out in outs:
            np.testing.assert_array_equal(out.data, full)

    def test_backward_is_reduce_scatter(self, rng, world4):
        """Each input's grad is the sum over outputs of its slice."""
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (2, 3))
        outs = dist_all_gather(g, shards, axis=0)
        grads = [rng.standard_normal((8, 3)) for _ in range(4)]
        for out, go in zip(outs, grads):
            out.backward(go)
        total = np.sum(grads, axis=0)
        for i, shard in enumerate(shards):
            np.testing.assert_allclose(shard.grad,
                                       total[i * 2:(i + 1) * 2],
                                       rtol=1e-12)

    def test_backward_bytes_recorded(self, rng, world4):
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (2, 3))
        outs = dist_all_gather(g, shards, axis=0, elem_bytes=2.0,
                               tag="x")
        for out in outs:
            out.backward(np.ones((8, 3)))
        led = world4.ledger
        fwd = led.total_bytes(tag="x")
        bwd = led.total_bytes(tag="x:bwd")
        # Forward AG and backward RS move the same total bytes.
        assert fwd == pytest.approx(bwd)


class TestDistReduceScatter:
    def test_forward(self, rng, world4):
        g = world4.full_group()
        tensors = leaf_shards(rng, 4, (8, 2))
        outs = dist_reduce_scatter(g, tensors, axis=0)
        total = np.sum([t.data for t in tensors], axis=0)
        for j, out in enumerate(outs):
            np.testing.assert_allclose(out.data,
                                       total[j * 2:(j + 1) * 2],
                                       rtol=1e-10)

    def test_backward_is_all_gather(self, rng, world4):
        g = world4.full_group()
        tensors = leaf_shards(rng, 4, (8, 2))
        outs = dist_reduce_scatter(g, tensors, axis=0)
        grads = [rng.standard_normal((2, 2)) for _ in range(4)]
        for out, go in zip(outs, grads):
            out.backward(go)
        # d out_j / d in_i = selector of slice j, so every input sees the
        # concatenation of all output grads.
        full = np.concatenate(grads, axis=0)
        for t in tensors:
            np.testing.assert_allclose(t.grad, full, rtol=1e-12)

    def test_shape_validation(self, rng, world4):
        g = world4.full_group()
        with pytest.raises(ValueError, match="not divisible"):
            dist_reduce_scatter(g, leaf_shards(rng, 4, (7, 2)), axis=0)


class TestDistAllToAll:
    def test_forward_repartition(self, rng, world4):
        """Split heads / gather sequence: the Ulysses primitive."""
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (1, 2, 8, 3))  # [b, s/n, heads, d]
        outs = dist_all_to_all(g, shards, split_axis=2, concat_axis=1)
        assert outs[0].shape == (1, 8, 2, 3)
        # Rank j's output position (i*2..) holds rank i's head chunk j.
        for j in range(4):
            for i in range(4):
                np.testing.assert_array_equal(
                    outs[j].data[:, i * 2:(i + 1) * 2],
                    shards[i].data[:, :, j * 2:(j + 1) * 2])

    def test_roundtrip_identity(self, rng, world4):
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (1, 2, 8, 3))
        fwd = dist_all_to_all(g, shards, split_axis=2, concat_axis=1)
        back = dist_all_to_all(g, fwd, split_axis=1, concat_axis=2)
        for orig, rec in zip(shards, back):
            np.testing.assert_allclose(rec.data, orig.data, rtol=1e-12)

    def test_backward_reverses(self, rng, world4):
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (1, 2, 4, 3))
        outs = dist_all_to_all(g, shards, split_axis=2, concat_axis=1)
        grads = [rng.standard_normal(o.shape) for o in outs]
        for out, go in zip(outs, grads):
            out.backward(go)
        # Reconstruct expected grads by running the reverse A2A on numpy.
        for i in range(4):
            expected = np.concatenate([
                grads[j][:, i * 2:(i + 1) * 2] for j in range(4)
            ], axis=2)
            np.testing.assert_allclose(shards[i].grad, expected,
                                       rtol=1e-12)

    def test_indivisible_split_axis(self, rng, world4):
        g = world4.full_group()
        with pytest.raises(ValueError, match="not divisible"):
            dist_all_to_all(g, leaf_shards(rng, 4, (1, 2, 6, 3)),
                            split_axis=2, concat_axis=1)


class TestDistAllToAllUneven:
    def test_forward_routing(self, rng, world4):
        g = world4.full_group()
        splits = [[2, 0, 1, 0], [0, 1, 0, 1], [1, 1, 1, 1], [0, 0, 2, 0]]
        tensors = [Tensor(rng.standard_normal((sum(s), 3)),
                          requires_grad=True) for s in splits]
        outs = dist_all_to_all_uneven(g, tensors, splits)
        for j in range(4):
            assert outs[j].shape[0] == sum(splits[i][j] for i in range(4))

    def test_gradient_returns_to_source(self, rng, world4):
        g = world4.full_group()
        splits = [[1, 1, 0, 0], [0, 2, 0, 0], [1, 0, 1, 0], [0, 0, 0, 1]]
        tensors = [Tensor(rng.standard_normal((sum(s), 2)),
                          requires_grad=True) for s in splits]
        outs = dist_all_to_all_uneven(g, tensors, splits)
        for j, out in enumerate(outs):
            if out.shape[0]:
                out.backward(np.full(out.shape, float(j + 1)))
        # Rank 0 sent row 0 to rank 0 and row 1 to rank 1.
        np.testing.assert_allclose(tensors[0].grad[0], [1.0, 1.0])
        np.testing.assert_allclose(tensors[0].grad[1], [2.0, 2.0])

    def test_roundtrip_with_transposed_splits(self, rng, world4):
        g = world4.full_group()
        splits = [[1, 2, 1, 0], [2, 0, 1, 1], [0, 1, 1, 2], [1, 1, 0, 1]]
        tensors = [Tensor(rng.standard_normal((sum(s), 2)),
                          requires_grad=True) for s in splits]
        outs = dist_all_to_all_uneven(g, tensors, splits)
        back_splits = [[splits[i][j] for i in range(4)] for j in range(4)]
        back = dist_all_to_all_uneven(g, outs, back_splits)
        for orig, rec in zip(tensors, back):
            np.testing.assert_allclose(
                np.sort(rec.data, axis=0), np.sort(orig.data, axis=0),
                rtol=1e-12)


class TestDistAllReduce:
    def test_forward(self, rng, world4):
        g = world4.full_group()
        tensors = leaf_shards(rng, 4, (3, 2))
        outs = dist_all_reduce(g, tensors)
        total = np.sum([t.data for t in tensors], axis=0)
        for out in outs:
            np.testing.assert_allclose(out.data, total, rtol=1e-12)

    def test_backward_all_reduces_grads(self, rng, world4):
        g = world4.full_group()
        tensors = leaf_shards(rng, 4, (3, 2))
        outs = dist_all_reduce(g, tensors)
        grads = [rng.standard_normal((3, 2)) for _ in range(4)]
        for out, go in zip(outs, grads):
            out.backward(go)
        total = np.sum(grads, axis=0)
        for t in tensors:
            np.testing.assert_allclose(t.grad, total, rtol=1e-12)
