"""Tests for recovery policies: retry/backoff, checkpoint chains, and
the end-to-end fault-storm run (repro.ft.recovery + ProductionRunner)."""

import os

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.runner import FaultInjector, ProductionRunner
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.ft import (
    BackoffPolicy,
    CommTimeout,
    FaultPlan,
    FaultSpec,
    LossSpikeGuard,
    RetryExhausted,
    RetryStats,
    retry_with_backoff,
    validate_checkpoint,
    write_checkpoint_meta,
)
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("ftrec", n_layers=1, hidden_size=16, n_heads=4,
                     gqa_ratio=2, ffn_hidden_size=24, n_experts=4,
                     top_k=2, vocab_size=32, seq_len=8)


def make_factory(plan=None):
    def factory():
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=8, learning_rate=5e-3,
                            aux_loss_coeff=0.01)
        world = World(2, 2)
        if plan is not None:
            world.attach_fault_plan(plan)
        return MegaScaleTrainer(
            model, world, ParallelConfig.megascale(2), train,
            optimizer=AdamW(model.parameters(), lr=5e-3))
    return factory


def make_batches(n):
    corpus = MarkovCorpus(vocab_size=32, seed=0)
    return list(batch_iterator(corpus, 2, 8, seed=1, limit=n))


def calls_per_step():
    """Collective calls (forward + backward) per train step."""
    plan = FaultPlan()
    trainer = make_factory(plan)()
    batches = make_batches(2)
    trainer.train_step(batches[0])
    first = plan.calls
    trainer.train_step(batches[1])
    assert plan.calls == 2 * first  # uniform per step
    return first


def flip_byte(path, offset=None):
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        pos = len(data) // 2 if offset is None else offset
        data[pos] ^= 0xFF
        handle.seek(0)
        handle.write(data)


class TestRetryWithBackoff:
    def test_backoff_policy_delays(self):
        policy = BackoffPolicy(max_retries=5, base_delay=0.5,
                               multiplier=2.0, max_delay=3.0)
        assert [policy.delay(a) for a in range(4)] == \
            [0.5, 1.0, 2.0, 3.0]

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            BackoffPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="multiplier"):
            BackoffPolicy(multiplier=0.5)

    def test_succeeds_after_transient_faults(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise CommTimeout("injected")
            return "ok"

        stats = RetryStats()
        slept = []
        out = retry_with_backoff(flaky, BackoffPolicy(max_retries=3),
                                 sleep=slept.append, stats=stats)
        assert out == "ok"
        assert stats.retries == 2
        assert slept == [0.5, 1.0]
        assert stats.total_backoff == pytest.approx(1.5)

    def test_exhaustion_escalates(self):
        def always_fails():
            raise CommTimeout("injected")

        stats = RetryStats()
        with pytest.raises(RetryExhausted):
            retry_with_backoff(always_fails,
                               BackoffPolicy(max_retries=2),
                               stats=stats)
        assert stats.attempts == 3
        assert stats.exhausted == 1

    def test_non_retryable_passes_through(self):
        def crashes():
            raise ValueError("not a comm fault")

        with pytest.raises(ValueError):
            retry_with_backoff(crashes, BackoffPolicy(max_retries=5))


class TestCheckpointIntegrity:
    def write_checkpoint(self, tmp_path, arrays):
        path = str(tmp_path / "step_00000004.npz")
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        write_checkpoint_meta(path, 4)
        return path

    def test_valid_checkpoint_passes(self, tmp_path):
        path = self.write_checkpoint(tmp_path, {"w": np.ones(8)})
        assert validate_checkpoint(path)

    def test_bit_flip_detected(self, tmp_path):
        path = self.write_checkpoint(tmp_path, {"w": np.ones(64)})
        flip_byte(path)
        assert not validate_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = self.write_checkpoint(tmp_path, {"w": np.ones(64)})
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        assert not validate_checkpoint(path)

    def test_missing_file_invalid(self, tmp_path):
        assert not validate_checkpoint(str(tmp_path / "nope.npz"))

    def test_checkpoint_without_sidecar_still_validates(self, tmp_path):
        """Pre-FT checkpoints (no meta) validate via readback."""
        path = str(tmp_path / "step_00000004.npz")
        with open(path, "wb") as handle:
            np.savez(handle, w=np.ones(8))
        assert validate_checkpoint(path)
        flip_byte(path)  # zip per-member CRC catches it on readback
        assert not validate_checkpoint(path)


class TestCheckpointChain:
    def test_corrupt_latest_falls_back(self, tmp_path):
        runner = ProductionRunner(make_factory(), str(tmp_path),
                                  checkpoint_interval=4)
        runner.run(make_batches(8))
        assert runner.latest_checkpoint() == 8
        flip_byte(runner._path(8))
        fresh = ProductionRunner(make_factory(), str(tmp_path),
                                 checkpoint_interval=4)
        assert fresh.latest_checkpoint() == 4
        assert fresh.discarded == [8]

    def test_truncated_latest_falls_back(self, tmp_path):
        runner = ProductionRunner(make_factory(), str(tmp_path),
                                  checkpoint_interval=4)
        runner.run(make_batches(8))
        with open(runner._path(8), "r+b") as handle:
            handle.truncate(10)
        fresh = ProductionRunner(make_factory(), str(tmp_path),
                                 checkpoint_interval=4)
        assert fresh.latest_checkpoint() == 4

    def test_all_corrupt_restarts_from_scratch(self, tmp_path):
        runner = ProductionRunner(make_factory(), str(tmp_path),
                                  checkpoint_interval=4)
        runner.run(make_batches(8))
        flip_byte(runner._path(4))
        flip_byte(runner._path(8))
        fresh = ProductionRunner(make_factory(), str(tmp_path),
                                 checkpoint_interval=4)
        assert fresh.latest_checkpoint() is None
        # A full run from scratch still completes.
        metrics = fresh.run(make_batches(8))
        assert set(metrics.steps) == set(range(8))

    def test_resume_after_corruption_matches_clean(self, tmp_path):
        """Walking back the chain replays more steps but lands on the
        identical final state."""
        batches = make_batches(10)
        clean = ProductionRunner(make_factory(),
                                 str(tmp_path / "clean"),
                                 checkpoint_interval=3)
        clean.run(batches)

        faulty = ProductionRunner(make_factory(),
                                  str(tmp_path / "faulty"),
                                  checkpoint_interval=3)
        faulty.run(batches[:8])  # checkpoints at 3, 6 and final 8
        flip_byte(faulty._path(6))
        flip_byte(faulty._path(8))
        resumed = ProductionRunner(make_factory(),
                                   str(tmp_path / "faulty"),
                                   checkpoint_interval=3)
        metrics = resumed.run(batches)
        assert resumed.discarded == [8, 6]
        assert metrics.steps[0] == 3  # resumed from 3, not 6 or 8
        with np.load(clean._path(10)) as a, \
                np.load(resumed._path(10)) as b:
            assert sorted(a.files) == sorted(b.files)
            for key in a.files:
                assert a[key].tobytes() == b[key].tobytes(), key


class TestRunnerRetryIntegration:
    def test_transient_comm_fault_retried_in_place(self, tmp_path):
        cps = calls_per_step()
        plan = FaultPlan([FaultSpec("timeout", at_call=2 * cps + 1)])
        runner = ProductionRunner(
            make_factory(plan), str(tmp_path), checkpoint_interval=4,
            retry_policy=BackoffPolicy(max_retries=2))
        metrics = runner.run(make_batches(6))
        assert metrics.restart_count == 0  # absorbed by retry
        assert metrics.retries == 1
        assert metrics.backoff_seconds > 0
        assert metrics.steps == list(range(6))

    def test_exhausted_retries_escalate_to_restart(self, tmp_path):
        cps = calls_per_step()
        # Attempt 1 faults at its first collective of step 2, and the
        # single allowed retry faults at *its* first collective too.
        plan = FaultPlan([FaultSpec("timeout", at_call=2 * cps),
                          FaultSpec("timeout", at_call=2 * cps + 1)])
        runner = ProductionRunner(
            make_factory(plan), str(tmp_path), checkpoint_interval=4,
            retry_policy=BackoffPolicy(max_retries=1))
        metrics = runner.run(make_batches(6))
        assert metrics.restart_count == 1
        assert set(metrics.steps) == set(range(6))

    def test_comm_fault_without_retry_policy_restarts(self, tmp_path):
        cps = calls_per_step()
        plan = FaultPlan([FaultSpec("timeout", at_call=2 * cps + 1)])
        runner = ProductionRunner(make_factory(plan), str(tmp_path),
                                  checkpoint_interval=4)
        metrics = runner.run(make_batches(6))
        assert metrics.restart_count == 1

    def test_faulted_run_reproduces_clean_loss_trajectory(self,
                                                          tmp_path):
        """Determinism: random transient faults + retries + restarts
        leave the per-step final losses exactly equal to a clean run."""
        batches = make_batches(10)
        clean = ProductionRunner(make_factory(),
                                 str(tmp_path / "clean"),
                                 checkpoint_interval=3)
        clean_metrics = clean.run(batches)

        plan = FaultPlan(rate=0.05, seed=11,
                         kinds=("timeout", "corrupt"))
        faulty = ProductionRunner(
            make_factory(plan), str(tmp_path / "faulty"),
            checkpoint_interval=3,
            retry_policy=BackoffPolicy(max_retries=4))
        faulty_metrics = faulty.run(batches)
        assert plan.fired  # the run actually experienced faults

        final = {}
        for step, loss in zip(faulty_metrics.steps,
                              faulty_metrics.losses):
            final[step] = loss
        for step, loss in zip(clean_metrics.steps,
                              clean_metrics.losses):
            assert final[step] == loss, step


class TestLossSpikeRecovery:
    def test_rollback_then_identical_replay(self, tmp_path):
        batches = make_batches(8)
        clean = ProductionRunner(make_factory(),
                                 str(tmp_path / "clean"),
                                 checkpoint_interval=4)
        clean.run(batches)

        runner = ProductionRunner(
            make_factory(), str(tmp_path / "spiky"),
            checkpoint_interval=4,
            loss_guard=LossSpikeGuard(window=8, factor=2.0,
                                      min_history=3))
        injector = FaultInjector(spike_steps=[6], spike_factor=100.0)
        metrics = runner.run(batches, injector)
        assert metrics.rollbacks == [6]
        assert injector.spiked == [6]
        assert metrics.steps.count(6) == 1  # spiked attempt discarded
        with np.load(clean._path(8)) as a, np.load(runner._path(8)) as b:
            for key in a.files:
                assert a[key].tobytes() == b[key].tobytes(), key

    def test_skip_policy_drops_offending_batch(self, tmp_path):
        runner = ProductionRunner(
            make_factory(), str(tmp_path), checkpoint_interval=4,
            loss_guard=LossSpikeGuard(window=8, factor=2.0,
                                      min_history=3),
            on_spike="skip")
        injector = FaultInjector(spike_steps=[5], spike_factor=100.0)
        metrics = runner.run(make_batches(8), injector)
        assert metrics.skipped == [5]
        assert set(metrics.steps) == set(range(8)) - {5}

    def test_rollback_budget_enforced(self, tmp_path):
        runner = ProductionRunner(
            make_factory(), str(tmp_path), checkpoint_interval=4,
            loss_guard=LossSpikeGuard(window=8, factor=2.0,
                                      min_history=2),
            max_rollbacks=1)
        # Three scheduled spikes exceed the budget of one rollback.
        injector = FaultInjector(spike_steps=[3, 4, 5],
                                 spike_factor=100.0)
        from repro.ft import LossSpike
        with pytest.raises(LossSpike):
            runner.run(make_batches(8), injector)

    def test_spike_validation(self, tmp_path):
        with pytest.raises(ValueError, match="on_spike"):
            ProductionRunner(make_factory(), str(tmp_path),
                             on_spike="panic")


class TestEndToEndFaultStorm:
    def test_storm_run_matches_clean_run_bytewise(self, tmp_path):
        """Acceptance: one run through a mid-run comm fault, a
        corrupted latest checkpoint (with rank crash), and a loss
        spike finishes with final weights byte-identical to a
        fault-free run over the same batches."""
        batches = make_batches(12)
        clean = ProductionRunner(make_factory(),
                                 str(tmp_path / "clean"),
                                 checkpoint_interval=4)
        clean_metrics = clean.run(batches)

        cps = calls_per_step()
        # Transient comm timeout somewhere inside step 5.
        plan = FaultPlan([FaultSpec("timeout", at_call=5 * cps + 3)])
        storm_dir = str(tmp_path / "storm")
        runner = ProductionRunner(
            make_factory(plan), storm_dir, checkpoint_interval=4,
            retry_policy=BackoffPolicy(max_retries=2),
            loss_guard=LossSpikeGuard(window=8, factor=2.0,
                                      min_history=3))

        class CorruptingInjector(FaultInjector):
            """Corrupts the newest checkpoint, then crashes."""

            def check(self, step):
                if step in self.pending:
                    flip_byte(runner._path(8))
                super().check(step)

        injector = CorruptingInjector(fault_steps=[9],
                                      spike_steps=[10],
                                      spike_factor=100.0)
        metrics = runner.run(batches, injector)

        # Every recovery mechanism actually exercised.
        assert metrics.retries == 1            # comm timeout retried
        assert metrics.restart_count == 1      # crash at step 9
        assert runner.discarded == [8]         # corrupt ckpt walked past
        assert metrics.steps.count(4) == 2     # resumed from 4, not 8
        assert metrics.rollbacks == [10]       # loss spike rolled back
        assert set(metrics.steps) == set(range(12))

        # Final weights byte-identical to the fault-free run.
        with np.load(clean._path(12)) as a, \
                np.load(runner._path(12)) as b:
            assert sorted(a.files) == sorted(b.files)
            for key in a.files:
                assert a[key].tobytes() == b[key].tobytes(), key

        # And the loss trajectory is reproduced exactly.
        final = {}
        for step, loss in zip(metrics.steps, metrics.losses):
            final[step] = loss
        for step, loss in zip(clean_metrics.steps,
                              clean_metrics.losses):
            assert final[step] == loss, step
