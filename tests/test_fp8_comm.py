"""Tests for FP8-compressed collectives and their engine integration
(§5, 'Communication compression for FP8 training')."""

import numpy as np
import pytest

from repro.comm import World
from repro.core import MegaScaleTrainer, ModelConfig, ParallelConfig, \
    TrainConfig
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.model.moe import MoELayer
from repro.parallel.dist_ops_fp8 import (
    dist_all_gather_fp8,
    dist_reduce_scatter_fp8,
)
from repro.parallel.ep_ffn import EPFFNEngine
from repro.parallel.tp_ffn import TPFFNEngine
from repro.precision.optimizer import AdamW
from repro.tensor import Tensor


def leaf_shards(rng, n, shape):
    return [Tensor(rng.standard_normal(shape), requires_grad=True)
            for _ in range(n)]


class TestDistReduceScatterFP8:
    def test_close_to_exact_sum(self, rng, world4):
        g = world4.full_group()
        tensors = leaf_shards(rng, 4, (8, 16))
        outs = dist_reduce_scatter_fp8(g, tensors)
        exact = np.sum([t.data for t in tensors], axis=0)
        for j, out in enumerate(outs):
            ref = exact[j * 2:(j + 1) * 2]
            rel = np.abs(out.data - ref) / (np.abs(ref) + 1e-6)
            assert np.median(rel) < 0.1

    def test_reduction_in_high_precision(self, rng, world4):
        """Summing n near-max values must not saturate: the reduction
        happens after dequantization (§5)."""
        g = world4.full_group()
        tensors = [Tensor(np.full((4, 4), 300.0)) for _ in range(4)]
        outs = dist_reduce_scatter_fp8(g, tensors)
        assert outs[0].data.max() == pytest.approx(1200.0, rel=0.1)

    def test_wire_bytes_fp8(self, rng, world4):
        g = world4.full_group()
        tensors = leaf_shards(rng, 4, (8, 16))
        world4.ledger.clear()
        dist_reduce_scatter_fp8(g, tensors, tag="x")
        fwd = world4.ledger.total_bytes(tag="x")
        # 3 off-diagonal chunks of 2x16 at 1B + 2 rows x 4B scales each.
        expected_per_rank = 3 * (2 * 16 * 1.0 + 2 * 4.0)
        assert fwd == pytest.approx(4 * expected_per_rank)

    def test_backward_flows_with_quantization(self, rng, world4):
        g = world4.full_group()
        tensors = leaf_shards(rng, 4, (8, 4))
        outs = dist_reduce_scatter_fp8(g, tensors)
        total = outs[0].sum()
        for out in outs[1:]:
            total = total + out.sum()
        total.backward()
        for t in tensors:
            assert t.grad is not None
            # Gradient of a sum is ~ones; FP8 represents 1.0 exactly.
            np.testing.assert_allclose(t.grad, 1.0, rtol=1e-6)

    def test_validation(self, rng, world4):
        g = world4.full_group()
        with pytest.raises(ValueError, match="not divisible"):
            dist_reduce_scatter_fp8(g, leaf_shards(rng, 4, (7, 4)))
        with pytest.raises(ValueError, match="axis 0"):
            dist_reduce_scatter_fp8(g, leaf_shards(rng, 4, (8, 4)),
                                    axis=1)


class TestDistAllGatherFP8:
    def test_forward_close(self, rng, world4):
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (4, 8))
        outs = dist_all_gather_fp8(g, shards)
        full = np.concatenate([s.data for s in shards], axis=0)
        rel = np.abs(outs[0].data - full) / (np.abs(full) + 1e-6)
        assert np.median(rel) < 0.1

    def test_backward_reduces_to_sources(self, rng, world4):
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (4, 8))
        outs = dist_all_gather_fp8(g, shards)
        total = None
        for out in outs:
            piece = out.sum()
            total = piece if total is None else total + piece
        total.backward()
        for s in shards:
            # Each shard's grad accumulates n copies of ~1.0.
            np.testing.assert_allclose(s.grad, 4.0, rtol=0.1)

    def test_ledger_counts_scales(self, rng, world4):
        g = world4.full_group()
        shards = leaf_shards(rng, 4, (4, 8))
        world4.ledger.clear()
        dist_all_gather_fp8(g, shards, tag="y")
        per_rank = (4 * 8 * 1.0 + 4 * 4.0) * 3  # payload + scales, n-1
        assert world4.ledger.total_bytes(tag="y") == \
            pytest.approx(4 * per_rank)


class TestEngineIntegration:
    def setup_engine(self, Engine, fp8, rng, **kwargs):
        moe = MoELayer(rng, 16, 24, 8, 2, dtype=np.float64)
        world = World(4, 4)
        engine = Engine(world.full_group(), moe, fp8_comm=fp8, **kwargs)
        return moe, world, engine

    @pytest.mark.parametrize("Engine,kwargs", [
        (EPFFNEngine, {"mode": "ag_rs"}),
        (TPFFNEngine, {}),
    ])
    def test_compressed_output_close(self, Engine, kwargs):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 8, 16))
        moe_ref = MoELayer(np.random.default_rng(1), 16, 24, 8, 2,
                           dtype=np.float64)
        ref = moe_ref(Tensor(x)).hidden.data

        moe, world, engine = self.setup_engine(
            Engine, True, np.random.default_rng(1), **kwargs)
        shards = [Tensor(x[:, r * 2:(r + 1) * 2].copy())
                  for r in range(4)]
        result = engine.forward(shards)
        outs = (result.output_shards if hasattr(result, "output_shards")
                else result[0])
        full = np.concatenate([o.data for o in outs], axis=1)
        rel = np.abs(full - ref) / (np.abs(ref) + 1e-3)
        assert np.median(rel) < 0.15

    def test_fp8_halves_forward_bytes_vs_bf16(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 8, 16))
        totals = {}
        for fp8 in (False, True):
            moe, world, engine = self.setup_engine(
                TPFFNEngine, fp8, np.random.default_rng(3))
            if not fp8:
                engine.elem_bytes = 2.0
            shards = [Tensor(x[:, r * 2:(r + 1) * 2].copy())
                      for r in range(4)]
            engine.forward(shards)
            totals[fp8] = sum(
                r.total_bytes for r in world.ledger.records
                if not r.tag.endswith(":bwd"))
        # FP8 payload is half of BF16 plus per-token FP32 scales.
        assert totals[True] < 0.75 * totals[False]


class TestFP8TrainerEndToEnd:
    def test_training_converges_with_compression(self):
        config = ModelConfig("fp8comm", 2, 32, 8, 2, 48, 8, 6,
                             vocab_size=64, seq_len=16)  # top-6: AG/RS
        model = MoETransformer(config, seed=0, dtype=np.float64)
        train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                            seq_len=16, learning_rate=3e-3,
                            aux_loss_coeff=0.01, precision="fp8")
        trainer = MegaScaleTrainer(
            model, World(4, 4), ParallelConfig.megascale(4), train,
            optimizer=AdamW(model.parameters(), lr=3e-3))
        assert trainer.engines[0].ffn_engine.fp8_comm
        corpus = MarkovCorpus(vocab_size=64, seed=0)
        losses = [trainer.train_step(b).lm_loss
                  for b in batch_iterator(corpus, 4, 16, seed=1,
                                          limit=10)]
        assert losses[-1] < losses[0]
        assert np.isfinite(losses).all()

    def test_compressed_curve_tracks_uncompressed(self):
        config = ModelConfig("fp8comm2", 2, 32, 8, 2, 48, 8, 6,
                             vocab_size=64, seq_len=16)
        curves = {}
        for precision in ("bf16", "fp8"):
            model = MoETransformer(config, seed=0, dtype=np.float64)
            train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                                seq_len=16, learning_rate=3e-3,
                                aux_loss_coeff=0.01,
                                precision=precision)
            trainer = MegaScaleTrainer(
                model, World(4, 4), ParallelConfig.megascale(4), train,
                optimizer=AdamW(model.parameters(), lr=3e-3))
            corpus = MarkovCorpus(vocab_size=64, seed=0)
            curves[precision] = np.array([
                trainer.train_step(b).lm_loss
                for b in batch_iterator(corpus, 4, 16, seed=1, limit=8)])
        rel = np.abs(curves["bf16"] - curves["fp8"]) / curves["bf16"]
        assert rel.mean() < 0.05
