"""Tests for the simulated collectives and their byte ledger."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    World,
    all_gather,
    all_reduce,
    all_to_all,
    all_to_all_uneven,
    broadcast,
    gather,
    reduce_scatter,
    scatter,
)


def make_shards(rng, n, shape):
    return [rng.standard_normal(shape) for _ in range(n)]


class TestAllGather:
    def test_semantics(self, rng, world4):
        g = world4.full_group()
        shards = make_shards(rng, 4, (2, 3))
        outs = all_gather(g, shards)
        expected = np.concatenate(shards, axis=0)
        for out in outs:
            np.testing.assert_array_equal(out, expected)

    def test_axis(self, rng, world4):
        g = world4.full_group()
        shards = make_shards(rng, 4, (2, 3))
        outs = all_gather(g, shards, axis=1)
        assert outs[0].shape == (2, 12)

    def test_outputs_shared_zero_copy(self, rng, world4):
        # With no fault plan, delivery is zero-copy: every rank gets the
        # same (read-only by contract) gathered array.
        g = world4.full_group()
        outs = all_gather(g, make_shards(rng, 4, (2,)))
        assert all(out is outs[0] for out in outs[1:])

    def test_outputs_independent_under_fault_plan(self, rng, world4):
        # A fault plan may corrupt one rank's delivery in place, so each
        # rank must own a private buffer.
        class _PassivePlan:
            def before(self, op, tag):
                return None

            def corrupt(self, op, tag, arrays):
                return False

            def slow_factor(self, rank):
                return 1.0

        world4.attach_fault_plan(_PassivePlan())
        g = world4.full_group()
        outs = all_gather(g, make_shards(rng, 4, (2,)))
        outs[0][0] = 999.0
        assert outs[1][0] != 999.0

    def test_ledger_ring_bytes(self, rng, world4):
        g = world4.full_group()
        world4.ledger.clear()
        all_gather(g, make_shards(rng, 4, (2, 3)), tag="t")
        rec = world4.ledger.records[-1]
        # Each rank sends its 6-element float64 shard (n-1) times.
        assert rec.send_bytes_per_rank == [6 * 8 * 3] * 4

    def test_elem_bytes_override(self, rng, world4):
        g = world4.full_group()
        world4.ledger.clear()
        all_gather(g, make_shards(rng, 4, (2, 3)), elem_bytes=2.0)
        assert world4.ledger.records[-1].send_bytes_per_rank == [36] * 4

    def test_wrong_shard_count(self, rng, world4):
        with pytest.raises(ValueError, match="expected 4 shards"):
            all_gather(world4.full_group(), make_shards(rng, 3, (2,)))


class TestReduceScatter:
    def test_semantics(self, rng, world4):
        g = world4.full_group()
        tensors = make_shards(rng, 4, (8, 3))
        outs = reduce_scatter(g, tensors)
        total = np.sum(tensors, axis=0)
        for j, out in enumerate(outs):
            np.testing.assert_allclose(out, total[j * 2:(j + 1) * 2],
                                       rtol=1e-12)

    def test_indivisible_raises(self, rng, world4):
        with pytest.raises(ValueError, match="not divisible"):
            reduce_scatter(world4.full_group(), make_shards(rng, 4, (7, 3)))

    def test_unequal_shapes_raise(self, rng, world4):
        tensors = make_shards(rng, 3, (8, 3)) + [rng.standard_normal((8, 4))]
        with pytest.raises(ValueError, match="equal shapes"):
            reduce_scatter(world4.full_group(), tensors)

    def test_ledger(self, rng, world4):
        g = world4.full_group()
        world4.ledger.clear()
        reduce_scatter(g, make_shards(rng, 4, (8, 3)))
        rec = world4.ledger.records[-1]
        assert rec.send_bytes_per_rank == [6 * 8 * 3] * 4


class TestAllReduce:
    def test_semantics(self, rng, world4):
        g = world4.full_group()
        tensors = make_shards(rng, 4, (3, 3))
        outs = all_reduce(g, tensors)
        total = np.sum(tensors, axis=0)
        for out in outs:
            np.testing.assert_allclose(out, total, rtol=1e-12)

    def test_rs_then_ag_equals_ar(self, rng, world4):
        """Ring all-reduce identity: AG(RS(x)) == AR(x)."""
        g = world4.full_group()
        tensors = make_shards(rng, 4, (8, 2))
        via_two = all_gather(g, reduce_scatter(g, tensors))
        direct = all_reduce(g, tensors)
        for a, b in zip(via_two, direct):
            np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_bytes_equal_two_phase(self, rng, world4):
        g = world4.full_group()
        world4.ledger.clear()
        tensors = make_shards(rng, 4, (8, 2))
        all_reduce(g, tensors, tag="ar")
        ar_bytes = world4.ledger.total_bytes(tag="ar")
        world4.ledger.clear()
        all_gather(g, reduce_scatter(g, tensors, tag="rs"), tag="ag")
        two_phase = world4.ledger.total_bytes()
        assert ar_bytes == pytest.approx(two_phase)


class TestAllToAll:
    def test_transpose_semantics(self, rng, world4):
        g = world4.full_group()
        chunks = [[rng.standard_normal((2,)) for _ in range(4)]
                  for _ in range(4)]
        received = all_to_all(g, chunks)
        for i in range(4):
            for j in range(4):
                np.testing.assert_array_equal(received[j][i], chunks[i][j])

    def test_involution(self, rng, world4):
        """A2A twice returns every chunk to its origin."""
        g = world4.full_group()
        chunks = [[rng.standard_normal((3,)) for _ in range(4)]
                  for _ in range(4)]
        once = all_to_all(g, chunks)
        twice = all_to_all(g, once)
        for i in range(4):
            for j in range(4):
                np.testing.assert_array_equal(twice[i][j], chunks[i][j])

    def test_self_chunk_free(self, rng, world4):
        g = world4.full_group()
        world4.ledger.clear()
        chunks = [[rng.standard_normal((5,)) for _ in range(4)]
                  for _ in range(4)]
        all_to_all(g, chunks)
        rec = world4.ledger.records[-1]
        assert rec.send_bytes_per_rank == [5 * 8 * 3] * 4

    def test_uneven_rows(self, rng, world4):
        g = world4.full_group()
        splits = [[1, 2, 0, 1], [0, 1, 1, 2], [2, 0, 1, 0], [1, 1, 1, 1]]
        tensors = [rng.standard_normal((sum(s), 3)) for s in splits]
        outs = all_to_all_uneven(g, tensors, splits)
        for j in range(4):
            assert outs[j].shape[0] == sum(splits[i][j] for i in range(4))
        # Rank 0's first row goes to rank 0 (split [1, ...]).
        np.testing.assert_array_equal(outs[0][0], tensors[0][0])

    def test_uneven_split_mismatch(self, rng, world4):
        g = world4.full_group()
        tensors = [rng.standard_normal((3, 2)) for _ in range(4)]
        bad = [[1, 1, 1, 1]] * 4  # sums to 4, rows are 3
        with pytest.raises(ValueError, match="do not cover"):
            all_to_all_uneven(g, tensors, bad)

    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_uneven_conservation(self, n):
        """Total rows are conserved through dispatch."""
        rng = np.random.default_rng(n)
        world = World(n, ranks_per_node=n)
        g = world.full_group()
        splits = [list(rng.integers(0, 4, n)) for _ in range(n)]
        tensors = [rng.standard_normal((sum(s), 2)) for s in splits]
        outs = all_to_all_uneven(g, tensors, splits)
        assert sum(o.shape[0] for o in outs) == \
            sum(t.shape[0] for t in tensors)


class TestBroadcastGatherScatter:
    def test_broadcast(self, rng, world4):
        g = world4.full_group()
        t = rng.standard_normal((3, 2))
        outs = broadcast(g, t, root=2)
        for out in outs:
            np.testing.assert_array_equal(out, t)

    def test_broadcast_bad_root(self, rng, world4):
        with pytest.raises(ValueError, match="root"):
            broadcast(world4.full_group(), np.zeros(2), root=9)

    def test_gather(self, rng, world4):
        g = world4.full_group()
        shards = make_shards(rng, 4, (2, 2))
        out = gather(g, shards, root=1)
        np.testing.assert_array_equal(out, np.concatenate(shards))

    def test_scatter_roundtrip(self, rng, world4):
        g = world4.full_group()
        t = rng.standard_normal((8, 2))
        pieces = scatter(g, t, root=0)
        np.testing.assert_array_equal(np.concatenate(pieces), t)

    def test_scatter_indivisible(self, rng, world4):
        with pytest.raises(ValueError, match="not divisible"):
            scatter(world4.full_group(), np.zeros((7, 2)))


class TestWorldAndGroups:
    def test_world_validation(self):
        with pytest.raises(ValueError):
            World(0)
        with pytest.raises(ValueError):
            World(4, ranks_per_node=0)

    def test_node_of(self, world8):
        assert world8.node_of(0) == 0
        assert world8.node_of(5) == 1

    def test_intra_node_groups(self, world8):
        groups = world8.intra_node_groups()
        assert [g.ranks for g in groups] == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert all(g.is_intra_node for g in groups)

    def test_cross_node_groups(self, world8):
        groups = world8.cross_node_groups()
        assert [g.ranks for g in groups] == [[0, 4], [1, 5], [2, 6], [3, 7]]
        assert not any(g.is_intra_node for g in groups)

    def test_group_duplicate_ranks(self, world4):
        with pytest.raises(ValueError, match="duplicate"):
            world4.group([0, 0, 1])

    def test_group_out_of_range(self, world4):
        with pytest.raises(ValueError, match="out of range"):
            world4.group([0, 7])

    def test_ledger_filters(self, rng, world4):
        g = world4.full_group()
        all_gather(g, make_shards(rng, 4, (2,)), tag="x")
        reduce_scatter(g, make_shards(rng, 4, (4,)), tag="y")
        led = world4.ledger
        assert led.total_bytes(op="all_gather") > 0
        assert led.total_bytes(tag="y") > 0
        assert led.total_bytes(op="all_gather", tag="y") == 0
        assert led.counts() == {"all_gather": 1, "reduce_scatter": 1}

    def test_ledger_disable(self, rng, world4):
        world4.ledger.enabled = False
        all_gather(world4.full_group(), make_shards(rng, 4, (2,)))
        assert not world4.ledger.records
