"""Tests for the hybrid 2D (model × data parallel) trainer (Fig. 4/5)."""

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.parallel.dp import DataParallelTrainer
from repro.parallel.hybrid2d import Hybrid2DTrainer, _is_replicated
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("h2d", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                     top_k=2, vocab_size=64, seq_len=16)
TRAIN = TrainConfig(global_batch_size=4, micro_batch_size=2, seq_len=16,
                    learning_rate=1e-2, aux_loss_coeff=0.01)


def make_batches(steps, per_step=2):
    corpus = MarkovCorpus(vocab_size=64, seed=0)
    return list(batch_iterator(corpus, 2, 16, seed=1,
                               limit=steps * per_step))


class TestReplicationClassifier:
    def test_attention_and_norms_replicated(self):
        for name in ("blocks.0.attn.qkv_proj.weight", "blocks.1.ln1.weight",
                     "embedding", "lm_head.weight", "final_norm.weight"):
            assert _is_replicated(name), name

    def test_experts_and_router_sharded(self):
        for name in ("blocks.0.moe.experts.3.fc1",
                     "blocks.1.moe.router.gate.weight"):
            assert not _is_replicated(name), name


class TestHybrid2DTrainer:
    def test_matches_plain_dp_exactly(self):
        batches = make_batches(3)
        world = World(8, ranks_per_node=4)
        h2d = Hybrid2DTrainer(CONFIG, world, ParallelConfig.megascale(4),
                              TRAIN, seed=0)
        h_losses = [h2d.train_step(batches[i:i + 2]).loss
                    for i in range(0, 6, 2)]

        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        dp = DataParallelTrainer(
            model, World(2, 2).full_group(),
            AdamW(model.parameters(), lr=1e-2),
            lambda m, b: m.language_model_loss(b, aux_coeff=0.01),
            sync_method="fp32_rs", grad_clip=1.0)
        d_losses = [dp.train_step(batches[i:i + 2]).mean_loss
                    for i in range(0, 6, 2)]
        np.testing.assert_allclose(h_losses, d_losses, atol=1e-12)

    def test_replicas_stay_identical(self):
        batches = make_batches(2)
        world = World(8, ranks_per_node=4)
        h2d = Hybrid2DTrainer(CONFIG, world, ParallelConfig.megascale(4),
                              TRAIN, seed=0)
        for i in range(0, 4, 2):
            h2d.train_step(batches[i:i + 2])
        a = h2d.replicas[0].state_dict()
        b = h2d.replicas[1].state_dict()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name], err_msg=name)

    def test_traffic_split_recorded(self):
        batches = make_batches(1)
        world = World(8, ranks_per_node=4)
        h2d = Hybrid2DTrainer(CONFIG, world, ParallelConfig.megascale(4),
                              TRAIN, seed=0)
        result = h2d.train_step(batches[:2])
        # Hierarchical sync produces both intra- and inter-node traffic.
        assert result.intra_node_sync_bytes > 0
        assert result.inter_node_sync_bytes > 0

    def test_sync_bytes_exact_under_ledger_rotation(self):
        """Traffic deltas come from cumulative tag counters: a bounded
        ledger rotating records between the before/after snapshots must
        not under-count the sync traffic."""
        batches = make_batches(2)

        def run(max_records):
            world = World(8, ranks_per_node=4,
                          max_ledger_records=max_records)
            h2d = Hybrid2DTrainer(CONFIG, world,
                                  ParallelConfig.megascale(4), TRAIN,
                                  seed=0)
            results = [h2d.train_step(batches[i:i + 2])
                       for i in range(0, 4, 2)]
            return world, results

        bounded_world, bounded = run(4)
        _, unbounded = run(None)
        assert bounded_world.ledger.dropped > 0
        for b_res, u_res in zip(bounded, unbounded):
            assert b_res.intra_node_sync_bytes == \
                u_res.intra_node_sync_bytes > 0
            assert b_res.inter_node_sync_bytes == \
                u_res.inter_node_sync_bytes > 0

    def test_intra_traffic_is_replicated_params_only(self):
        """Expert parameters never touch the intra-node sync path."""
        batches = make_batches(1)
        world = World(8, ranks_per_node=4)
        h2d = Hybrid2DTrainer(CONFIG, world, ParallelConfig.megascale(4),
                              TRAIN, seed=0)
        h2d.train_step(batches[:2])
        expert_tags = {r.tag for r in world.ledger.records
                       if "hybrid2d:expert" in r.tag}
        assert all(":intra_" not in t for t in expert_tags)

    def test_world_shape_validation(self):
        with pytest.raises(ValueError, match="ranks_per_node"):
            Hybrid2DTrainer(CONFIG, World(8, ranks_per_node=2),
                            ParallelConfig.megascale(4), TRAIN)

    def test_batch_count_validation(self):
        world = World(8, ranks_per_node=4)
        h2d = Hybrid2DTrainer(CONFIG, world, ParallelConfig.megascale(4),
                              TRAIN, seed=0)
        with pytest.raises(ValueError, match="replica batches"):
            h2d.train_step(make_batches(1)[:1])

    def test_single_replica_degenerates_to_mp_only(self):
        batches = make_batches(1)
        world = World(4, ranks_per_node=4)
        h2d = Hybrid2DTrainer(CONFIG, world, ParallelConfig.megascale(4),
                              TRAIN, seed=0)
        result = h2d.train_step(batches[:1])
        assert result.inter_node_sync_bytes == 0.0

    def test_eval_loss_runs(self):
        world = World(8, ranks_per_node=4)
        h2d = Hybrid2DTrainer(CONFIG, world, ParallelConfig.megascale(4),
                              TRAIN, seed=0)
        loss = h2d.eval_loss(make_batches(1)[0])
        assert np.isfinite(loss)
