"""End-to-end observability tests: traced training, 2D pipeline traces,
runner events, the ``repro trace`` CLI, and the regression harness."""

import importlib.util
import json
import os

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.runner import FaultInjector, ProductionRunner
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.obs import (
    Observability,
    audit_comm_volumes,
    crosscheck_tracer_ledger,
)
from repro.parallel.pp_engine import PipelineParallelTrainer
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("obs-e2e", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                     top_k=2, vocab_size=64, seq_len=16)
TRAIN = TrainConfig(global_batch_size=2, micro_batch_size=2, seq_len=16,
                    learning_rate=3e-3, aux_loss_coeff=0.01)


def make_batches(n, batch=2, seq=16):
    corpus = MarkovCorpus(vocab_size=64, seed=0)
    return list(batch_iterator(corpus, batch, seq, seed=1, limit=n))


def traced_step(ep_dispatch="ag_rs"):
    """One observed 4-way SP+EP training step; returns (obs, world)."""
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    obs = Observability.create()
    world = World(4, 4)
    trainer = MegaScaleTrainer(
        model, world,
        ParallelConfig.megascale(4, ep_dispatch=ep_dispatch), TRAIN,
        obs=obs)
    trainer.train_step(make_batches(1)[0])
    return obs, world


class TestTracedTrainingStep:
    def test_span_nesting(self):
        obs, _ = traced_step()
        tracer = obs.tracer
        (step,) = [s for s in tracer.closed_spans(cat="train")
                   if s.name == "train.step"]
        phases = [s.name for s in tracer.children_of(step)]
        assert phases == ["forward", "backward", "optimizer"]
        # Comm spans hang off the phases, never off the root.
        for span in tracer.closed_spans(cat="comm"):
            assert span.parent_id is not None

    def test_comm_spans_carry_stream_and_bytes(self):
        obs, _ = traced_step()
        comm = obs.tracer.closed_spans(cat="comm")
        assert comm, "no comm spans traced"
        for span in comm:
            assert span.stream == "comm/intra"
            assert span.attrs["bytes"] > 0
            assert span.attrs["tag"]

    def test_audit_ag_rs_within_one_percent(self):
        obs, world = traced_step(ep_dispatch="ag_rs")
        report = audit_comm_volumes(
            world.ledger, b=2, s=16, h=32, n=4, m=2, k=2,
            elem_bytes=8.0, passes=CONFIG.n_layers)
        assert report.ok, report.render()
        assert {e.mechanism for e in report.entries} == \
            {"sp_attention", "ep_ffn_ag_rs"}
        for entry in report.entries:
            assert entry.rel_error <= 0.01

    def test_audit_a2a_dispatch(self):
        obs, world = traced_step(ep_dispatch="a2a")
        report = audit_comm_volumes(
            world.ledger, b=2, s=16, h=32, n=4, m=2, k=2,
            elem_bytes=8.0, passes=CONFIG.n_layers)
        entry = report.entry("ep_ffn_a2a")
        assert not entry.exact
        assert entry.within_bound
        assert entry.ok, report.render()

    def test_crosscheck_and_metrics(self):
        obs, world = traced_step()
        ok, traced, ledger_bytes = crosscheck_tracer_ledger(
            obs.tracer, world.ledger)
        assert ok and traced == ledger_bytes > 0
        snap = obs.metrics.snapshot()
        assert snap["train.steps"] == 1.0
        assert snap["train.tokens"] == 2.0 * 16.0
        assert snap["comm.bytes.total"] == ledger_bytes
        assert snap["train.step.loss.count"] == 1.0


class TestPipeline2DTrace:
    def _run(self):
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        obs = Observability.create()
        world = World(2, 2)       # two pipeline stages
        mp_world = World(2, 2)    # SP+EP inside each stage
        world.attach_tracer(obs.tracer)
        mp_world.attach_tracer(obs.tracer)
        trainer = PipelineParallelTrainer(
            model, world, n_micro=2,
            optimizer=AdamW(model.parameters(), lr=3e-3),
            aux_loss_coeff=0.01, mp_world=mp_world,
            mp_attention="sp", mp_ffn="ep")
        result = trainer.train_step(make_batches(1)[0])
        return obs, world, mp_world, result

    def test_stage_spans_and_streams(self):
        obs, _, _, result = self._run()
        stages = obs.tracer.closed_spans(cat="pp.stage")
        # 2 stages x 2 micro-batches, forward only.
        assert len(stages) == 4
        assert {s.stream for s in stages} == {"stage0", "stage1"}
        assert all(s.phase == "F" for s in stages)
        assert result.loss > 0.0

    def test_comm_spans_nested_under_stages(self):
        obs, _, _, _ = self._run()
        tracer = obs.tracer
        stage_ids = {s.span_id for s in
                     tracer.closed_spans(cat="pp.stage")}
        fwd_comm = [s for s in tracer.closed_spans(cat="comm")
                    if not str(s.attrs.get("tag", "")).endswith(":bwd")]
        assert fwd_comm
        for span in fwd_comm:
            assert span.parent_id in stage_ids

    def test_p2p_instant_events(self):
        obs, world, _, result = self._run()
        p2p = [e for e in obs.tracer.events if e.cat == "comm.p2p"]
        fwd = [e for e in p2p if e.attrs["tag"].startswith("pp_fwd")]
        # Each of the 2 micro-batches crosses the single stage boundary.
        assert len(fwd) == 2
        # p2p_bytes counts forward *and* backward boundary crossings.
        assert sum(e.attrs["bytes"] for e in p2p) == result.p2p_bytes
        assert all(e.attrs["src"] == 0 and e.attrs["dst"] == 1
                   for e in fwd)

    def test_traced_bytes_cover_both_worlds(self):
        obs, world, mp_world, _ = self._run()
        traced = sum(
            float(s.attrs.get("bytes", 0.0))
            for s in obs.tracer.spans if s.cat.startswith("comm"))
        traced += sum(
            float(e.attrs.get("bytes", 0.0))
            for e in obs.tracer.events if e.cat.startswith("comm"))
        combined = world.ledger.total_bytes() + \
            mp_world.ledger.total_bytes()
        assert traced == pytest.approx(combined)
        assert combined > 0


class TestRunnerObservability:
    def test_checkpoint_and_restart_events(self, tmp_path):
        small = ModelConfig("obs-run", n_layers=1, hidden_size=16,
                            n_heads=4, gqa_ratio=2, ffn_hidden_size=24,
                            n_experts=4, top_k=2, vocab_size=32,
                            seq_len=8)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=8, learning_rate=5e-3,
                            aux_loss_coeff=0.01)
        obs = Observability.create()

        def factory():
            model = MoETransformer(small, seed=0, dtype=np.float64)
            return MegaScaleTrainer(
                model, World(2, 2), ParallelConfig.megascale(2), train,
                optimizer=AdamW(model.parameters(), lr=5e-3), obs=obs)

        runner = ProductionRunner(factory, str(tmp_path),
                                  checkpoint_interval=2, obs=obs)
        corpus = MarkovCorpus(vocab_size=32, seed=0)
        batches = list(batch_iterator(corpus, 2, 8, seed=1, limit=4))
        metrics = runner.run(batches,
                             fault_injector=FaultInjector([1]))

        events = [e for e in obs.tracer.events if e.cat == "runner"]
        names = [e.name for e in events]
        assert names.count("restart") == 1
        assert names.count("checkpoint") == len(metrics.checkpoints)
        restart = next(e for e in events if e.name == "restart")
        assert restart.attrs["fault"] == "SimulatedFault"
        snap = obs.metrics.snapshot()
        assert snap["runner.restart"] == 1.0
        assert snap["runner.checkpoint"] == float(len(metrics.checkpoints))
        # The trainer shared the bundle: step spans surround the events.
        assert any(s.name == "train.step"
                   for s in obs.tracer.closed_spans(cat="train"))


class TestTraceCLI:
    def test_trace_command(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        assert main(["trace", "1", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "comm-volume audit" in stdout
        assert "tracer/ledger bytes" in stdout and "match" in stdout

        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert events and all(e["ph"] in ("X", "i") for e in events)
        pids = {e["pid"] for e in events}
        assert "sim" in pids  # simulated lane rides along
        comm = [e for e in events if e.get("cat") == "comm"]
        assert comm and all(e["args"]["bytes"] > 0 for e in comm)

    def test_trace_rejects_bad_steps(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "t.json"
        assert main(["trace", "0", "--out", str(out)]) == 2
        assert not out.exists()


def load_regression_module():
    """Import benchmarks/regression.py (benchmarks is not a package)."""
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "benchmarks", "regression.py")
    spec = importlib.util.spec_from_file_location("bench_regression",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegressionHarness:
    def test_compare_directions(self):
        reg = load_regression_module()
        base = {"perf.iteration_time_s": 10.0, "perf.mfu": 0.5}
        rows, regressions = reg.compare(
            base, {"perf.iteration_time_s": 10.5, "perf.mfu": 0.5},
            tolerance=0.10)
        assert regressions == []
        # +20% time is a regression; -20% MFU is a regression too.
        _, regressions = reg.compare(
            base, {"perf.iteration_time_s": 12.0, "perf.mfu": 0.5},
            tolerance=0.10)
        assert [name for name, _ in regressions] == \
            ["perf.iteration_time_s"]
        _, regressions = reg.compare(
            base, {"perf.iteration_time_s": 10.0, "perf.mfu": 0.4},
            tolerance=0.10)
        assert [name for name, _ in regressions] == ["perf.mfu"]
        # An *improvement* (higher MFU, lower time) never regresses.
        _, regressions = reg.compare(
            base, {"perf.iteration_time_s": 5.0, "perf.mfu": 0.9},
            tolerance=0.10)
        assert regressions == []

    def test_disappeared_metric_is_regression(self):
        reg = load_regression_module()
        _, regressions = reg.compare({"a": 1.0}, {}, tolerance=0.10)
        assert regressions == [("a", "metric disappeared")]

    def test_tight_tolerance_on_comm_bytes(self):
        reg = load_regression_module()
        base = {"comm.total_bytes": 1000.0}
        _, regressions = reg.compare(
            base, {"comm.total_bytes": 1005.0}, tolerance=0.10)
        # 0.5% growth breaches the 0.1% byte-accounting override even
        # though it is inside the generic 10% tolerance.
        assert [name for name, _ in regressions] == ["comm.total_bytes"]

    def test_smoke_matches_committed_baseline(self, tmp_path):
        reg = load_regression_module()
        code = reg.main(["--smoke", "--out-dir", str(tmp_path)])
        assert code == 0
        # The output file is named after the newest committed baseline.
        written = sorted(tmp_path.glob("BENCH_PR*.json"))
        assert len(written) == 1
        out = json.loads(written[0].read_text())
        assert out["smoke"] is True
        assert out["metrics"]["comm.total_bytes"] > 0
