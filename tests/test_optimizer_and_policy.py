"""Tests for optimizers, gradient clipping, and precision policies."""

import numpy as np
import pytest

from repro.model import MoETransformer
from repro.model.layers import Linear
from repro.precision.formats import BF16, FP8_E4M3, round_bf16
from repro.precision.optimizer import (
    AdamW,
    MultiPrecisionAdamW,
    clip_grad_norm,
)
from repro.precision.policy import (
    bf16_policy,
    current_policy,
    fp8_naive_policy,
    fp8_policy,
)
from repro.tensor import Tensor


class TestClipGradNorm:
    def test_no_clip_below_threshold(self, rng):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.array([0.3, 0.0, 0.0, 0.0])
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(0.3)
        np.testing.assert_allclose(p.grad, [0.3, 0, 0, 0])

    def test_clips_to_max(self, rng):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        ps = []
        for _ in range(2):
            p = Tensor(np.zeros(1), requires_grad=True)
            p.grad = np.array([3.0])
            ps.append(p)
        norm = clip_grad_norm(ps, 10.0)
        assert norm == pytest.approx(np.sqrt(18.0))

    def test_disabled_with_zero_max(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        p.grad = np.array([100.0])
        clip_grad_norm([p], 0.0)
        assert p.grad[0] == 100.0

    def test_none_grads_skipped(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        assert clip_grad_norm([p], 1.0) == 0.0


class TestAdamW:
    def test_first_step_matches_closed_form(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        p.grad = np.array([0.5])
        opt = AdamW([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        opt.step()
        # After bias correction the first update is -lr * sign-ish.
        expected = 1.0 - 0.1 * 0.5 / (0.5 + 1e-8)
        assert p.data[0] == pytest.approx(expected, rel=1e-6)

    def test_weight_decay_decoupled(self):
        p = Tensor(np.array([2.0]), requires_grad=True)
        p.grad = np.array([0.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_none_grad_leaves_param(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        AdamW([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_moments_accumulate(self, rng):
        p = Tensor(rng.standard_normal(4), requires_grad=True)
        opt = AdamW([p], lr=0.01)
        for _ in range(3):
            p.grad = np.ones(4)
            opt.step()
        assert opt.step_count == 3
        assert (opt.m[0] > 0).all() and (opt.v[0] > 0).all()

    def test_explicit_grads_argument(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = AdamW([p], lr=0.1)
        opt.step(grads=[np.array([1.0])])
        assert p.data[0] < 1.0

    def test_state_nbytes(self, rng):
        p = Tensor(rng.standard_normal(10), requires_grad=True)
        opt = AdamW([p])
        assert opt.state_nbytes() == 2 * 10 * 8

    def test_zero_grad(self, rng):
        p = Tensor(rng.standard_normal(3), requires_grad=True)
        p.grad = np.ones(3)
        opt = AdamW([p])
        opt.zero_grad()
        assert p.grad is None


class TestMultiPrecisionAdamW:
    def test_model_params_stay_in_format(self, rng):
        p = Tensor(rng.standard_normal(32).astype(np.float32),
                   requires_grad=True)
        opt = MultiPrecisionAdamW([p], model_format=FP8_E4M3, lr=0.01)
        from repro.precision.formats import round_fp8
        np.testing.assert_array_equal(p.data, round_fp8(p.data))
        for _ in range(3):
            p.grad = rng.standard_normal(32)
            opt.step()
            np.testing.assert_array_equal(p.data, round_fp8(p.data))

    def test_main_params_keep_full_precision(self, rng):
        """Small updates accumulate in the FP32 master copy even when
        each is below the FP8 resolution — the §7 rationale."""
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = MultiPrecisionAdamW([p], model_format=FP8_E4M3, lr=1e-4,
                                  betas=(0.0, 0.0))
        for _ in range(100):
            p.grad = np.array([1.0])
            opt.step()
        # 100 × 1e-4 accumulated in the master copy.
        assert opt.main_params[0][0] == pytest.approx(1.0 - 1e-2,
                                                      rel=1e-3)

    def test_wire_bytes_halved_vs_bf16(self, rng):
        p = Tensor(rng.standard_normal(100).astype(np.float32),
                   requires_grad=True)
        fp8_opt = MultiPrecisionAdamW([p], model_format=FP8_E4M3)
        bf16_opt = MultiPrecisionAdamW(
            [Tensor(rng.standard_normal(100).astype(np.float32),
                    requires_grad=True)], model_format=BF16)
        assert fp8_opt.model_param_nbytes() == \
            bf16_opt.model_param_nbytes() / 2


class TestPrecisionPolicy:
    def test_no_policy_by_default(self):
        assert current_policy() is None

    def test_context_nesting(self):
        with bf16_policy() as outer:
            assert current_policy() is outer
            with fp8_policy() as inner:
                assert current_policy() is inner
            assert current_policy() is outer
        assert current_policy() is None

    def test_linear_applies_policy(self, rng):
        lin = Linear(rng, 8, 8, dtype=np.float64)
        x = Tensor(rng.standard_normal((4, 8)))
        exact = lin(x).data
        with bf16_policy():
            rounded = lin(x).data
        expected = round_bf16(x.data) @ round_bf16(lin.weight.data)
        np.testing.assert_allclose(rounded, expected, rtol=1e-6)
        assert np.abs(rounded - exact).max() > 0

    def test_fp8_policy_close_to_exact(self, rng, tiny_config):
        model = MoETransformer(tiny_config, seed=0, dtype=np.float64)
        ids = rng.integers(0, 64, (2, 9))
        exact = model.language_model_loss(ids).item()
        with fp8_policy():
            fp8 = model.language_model_loss(ids).item()
        assert fp8 == pytest.approx(exact, rel=0.05)

    def test_per_token_beats_per_tensor_with_outliers(self, rng):
        """The §7 SwiGLU observation: per-token activation quantization
        tracks the full-precision result better than per-tensor when
        token magnitudes vary wildly."""
        lin = Linear(rng, 16, 16, dtype=np.float64)
        x = rng.standard_normal((32, 16))
        x[0] *= 300.0  # one outlier token
        exact = lin(Tensor(x)).data
        with fp8_policy():
            per_token = lin(Tensor(x)).data
        with fp8_naive_policy():
            per_tensor = lin(Tensor(x)).data
        err_token = np.abs(per_token[1:] - exact[1:]).mean()
        err_tensor = np.abs(per_tensor[1:] - exact[1:]).mean()
        assert err_token < err_tensor

    def test_gradients_flow_through_policy(self, rng):
        lin = Linear(rng, 4, 4, dtype=np.float64)
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        with bf16_policy():
            lin(x).sum().backward()
        assert x.grad is not None
        assert lin.weight.grad is not None
