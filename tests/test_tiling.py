"""Tile-granular fused-kernel execution (§4.2): properties and knobs.

The tile transform decomposes each fused op group into per-tile
sub-ops, the chunked collectives move one tile's bytes at a time, and
the DAG executor runs the resulting stream — all without changing a
single bit of the numerics.  These tests pin the three contracts:

* **recomposition** — the tiled graph is the original graph cut along
  tile boundaries: same base op set, work attributes summing back
  exactly, deps encoding the §4.2 pipeline;
* **exact accounting** — per-tile CommLedger records sum to the
  unfused Eq. 1–4 bytes (bitwise, across ledger rotation), and the
  logical collective counts do not change;
* **bitwise identity** — tiled execution matches untiled execution in
  every mode (sequential, threaded, vectorized).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.group import World
from repro.core.config import (GPU_SPECS, ModelConfig, ParallelConfig,
                               TrainConfig)
from repro.core.executor_bindings import layer_program
from repro.core.operators import (base_op_name, plan_tiles, tile_name,
                                  tiled_members)
from repro.core.trainer import MegaScaleTrainer
from repro.model.transformer import MoETransformer
from repro.perf.estimator import (TILE_SPAN_PREFIX, KernelModel,
                                  calibrate_from_spans)
from repro.runtime.dag_executor import (tile_conformance_problems,
                                        tiled_execution_order)
from repro.sim.engine import simulate
from repro.verify.cases import VerifyCase

RANKS = 4
SEQ = 16


def tiny_model_config(seq_len: int = SEQ) -> ModelConfig:
    return ModelConfig("tiny", n_layers=2, hidden_size=32, n_heads=8,
                       gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                       top_k=2, vocab_size=64, seq_len=seq_len)


def tiled_program(attention="sp", ffn="ep", ep_dispatch="ag_rs",
                  tile_tokens=2):
    parallel = ParallelConfig(RANKS, attention=attention, ffn=ffn,
                              ep_dispatch=ep_dispatch)
    return layer_program(tiny_model_config(), parallel, 2, SEQ,
                         tile_tokens=tile_tokens)


def run_training(tile_tokens, execution="sequential", steps=2,
                 ep_dispatch="ag_rs", max_ledger_records=None,
                 tracer=None, seed=0):
    """Train ``steps`` on the tiny model; returns (trainer, world)."""
    model = MoETransformer(tiny_model_config(), seed=seed,
                           dtype=np.float64)
    world = World(RANKS, RANKS, max_ledger_records=max_ledger_records)
    world.tracer = tracer
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=SEQ, execution=execution,
                        backend="dag", tile_tokens=tile_tokens)
    trainer = MegaScaleTrainer(
        model, world,
        ParallelConfig(RANKS, ep_dispatch=ep_dispatch), train)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        trainer.train_step(rng.integers(0, 64, size=(2, SEQ + 1)))
    return trainer, world


class TestTilePlan:
    def test_group_counts_follow_comm_pattern(self):
        """AG/RS and ragged-dispatch groups tile per rank (the §4.2
        source-rank swizzle); dense A2A groups tile per token chunk."""
        program = tiled_program(ep_dispatch="ag_rs", tile_tokens=2)
        assert program.tile_plan.group_tiles == {
            "a2a+attn/fwd": 2, "a2a+gemm/fwd": 2,
            "ag+scatter+ggemm/fwd": RANKS,
            "ggemm+gather+rs/fwd": RANKS,
        }
        program = tiled_program(ep_dispatch="a2a", tile_tokens=2)
        assert program.tile_plan.group_tiles == {
            "a2a+attn/fwd": 2, "a2a+gemm/fwd": 2,
            "a2a+ggemm/fwd": RANKS,
        }

    def test_widest_chunk_keeps_only_swizzle_groups(self):
        """tile_tokens == local shard: dense A2A groups collapse to a
        single tile (dropped); rank-swizzled groups still decompose."""
        program = tiled_program(tile_tokens=SEQ // RANKS)
        assert program.tile_plan.group_tiles == {
            "ag+scatter+ggemm/fwd": RANKS,
            "ggemm+gather+rs/fwd": RANKS,
        }

    def test_non_divisor_width_rejected(self):
        with pytest.raises(ValueError, match="divisors"):
            tiled_program(tile_tokens=3)
        program = tiled_program(tile_tokens=2)
        with pytest.raises(ValueError):
            plan_tiles(program.graph, RANKS, SEQ, 0)


class TestRecomposition:
    @pytest.mark.parametrize("attention,ffn,dispatch", [
        ("sp", "ep", "ag_rs"), ("sp", "ep", "a2a"), ("tp", "tp", "a2a"),
    ])
    def test_tile_graph_recomposes_to_original(self, attention, ffn,
                                               dispatch):
        program = tiled_program(attention, ffn, dispatch)
        graph, tiled = program.graph, program.tile_graph
        base_names = {op.name for op in graph}
        assert {base_op_name(op.name) for op in tiled} == base_names
        members = tiled_members(tiled)
        assert members, "tile graph decomposed no ops"
        for base, tiles in members.items():
            op = graph[base]
            count = len(tiles)
            assert tiles == [tile_name(base, i) for i in range(count)]
            for attr in ("flops", "mem_bytes", "comm_bytes"):
                total = sum(getattr(tiled[t], attr) for t in tiles)
                assert total == pytest.approx(getattr(op, attr),
                                              rel=1e-12)
            # Ascending in-order chain: tile i depends on tile i-1.
            for i in range(1, count):
                assert tile_name(base, i - 1) in tiled[tiles[i]].deps

    def test_untiled_ops_pass_through_unchanged(self):
        program = tiled_program()
        members = tiled_members(program.tile_graph)
        for op in program.graph:
            if op.name in members:
                continue
            assert op.name in program.tile_graph
            clone = program.tile_graph[op.name]
            assert clone.flops == op.flops
            assert clone.comm_bytes == op.comm_bytes


class TestTileConformance:
    def test_execution_order_is_conformant(self):
        """Both the executed stream (base-order expansion) and the
        scheduler's tile order are legal interleavings of the tile
        graph — the invariant accepts either, and any other topo
        order."""
        program = tiled_program()
        order = tiled_execution_order(program)
        assert tile_conformance_problems(program, order) == []
        assert tile_conformance_problems(program,
                                         program.tile_order) == []

    def test_descending_tiles_rejected(self):
        program = tiled_program()
        order = list(program.tile_order)
        base = next(iter(tiled_members(program.tile_graph)))
        i0, i1 = (order.index(tile_name(base, 0)),
                  order.index(tile_name(base, 1)))
        order[i0], order[i1] = order[i1], order[i0]
        assert tile_conformance_problems(program, order)

    def test_non_permutation_rejected(self):
        program = tiled_program()
        assert tile_conformance_problems(program,
                                         program.tile_order[:-1])
        assert tile_conformance_problems(program, None)

    def test_untiled_program_accepts_only_empty_stream(self):
        untiled = layer_program(tiny_model_config(),
                                ParallelConfig(RANKS), 2, SEQ)
        assert not untiled.tiled
        assert tile_conformance_problems(untiled, None) == []
        assert tile_conformance_problems(untiled, ["qkv_a2a#t0"])


class TestBitwiseIdentity:
    @pytest.mark.parametrize("execution", ["sequential", "threaded",
                                           "vectorized"])
    @pytest.mark.parametrize("dispatch", ["a2a", "ag_rs"])
    def test_tiled_matches_untiled(self, execution, dispatch):
        tiled, tiled_world = run_training(2, execution=execution,
                                          ep_dispatch=dispatch)
        plain, plain_world = run_training(None, execution=execution,
                                          ep_dispatch=dispatch)
        for (name, p), (_, q) in zip(tiled.model.named_parameters(),
                                     plain.model.named_parameters()):
            assert np.array_equal(p.data, q.data), name
        assert (tiled_world.ledger.total_bytes()
                == plain_world.ledger.total_bytes())
        assert tiled_world.ledger.counts() == plain_world.ledger.counts()

    def test_executed_tile_streams_recorded(self):
        trainer, _ = run_training(2)
        for engine in trainer.engines:
            stream = engine.last_executed_tiles
            assert stream is not None
            program = trainer.dag_program_for(SEQ)
            assert tile_conformance_problems(program, stream) == []

    def test_untiled_run_records_no_tile_stream(self):
        trainer, _ = run_training(None)
        for engine in trainer.engines:
            assert engine.last_executed_tiles is None


class TestLedgerExactness:
    def test_per_tile_bytes_sum_across_rotation(self):
        """Per-tile records must preserve the rotation-proof aggregates
        bitwise even when the ledger keeps only a handful of raw
        records — the Eq. 1–4 audit reads exactly these aggregates."""
        _, rotated = run_training(2, max_ledger_records=4)
        _, full = run_training(2, max_ledger_records=None)
        _, untiled = run_training(None)
        assert len(rotated.ledger.records) <= 4
        for other in (full, untiled):
            assert (rotated.ledger.total_bytes()
                    == other.ledger.total_bytes())
            assert rotated.ledger.counts() == other.ledger.counts()
            assert (rotated.ledger.per_rank_bytes()
                    == other.ledger.per_rank_bytes())

    def test_tile_records_tagged_with_chunk_index(self):
        _, world = run_training(2, steps=1)
        tiles = [r for r in world.ledger.records if r.tile is not None]
        assert tiles
        for record in tiles:
            index, count = record.tile
            assert 0 <= index < count


class TestKnobValidation:
    def test_train_config_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            TrainConfig(global_batch_size=2, tile_tokens=0)
        with pytest.raises(ValueError, match="dag"):
            TrainConfig(global_batch_size=2, backend="engine",
                        tile_tokens=2)

    def test_trainer_rejects_non_divisor_width_at_build(self):
        model = MoETransformer(tiny_model_config(), seed=0,
                               dtype=np.float64)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=SEQ, backend="dag", tile_tokens=3)
        trainer = MegaScaleTrainer(model, World(RANKS, RANKS),
                                   ParallelConfig(RANKS), train)
        with pytest.raises(ValueError, match="divisors"):
            trainer.train_step(np.zeros((2, SEQ + 1), dtype=np.int64))

    def test_env_knob_resolves_and_config_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_TOKENS", "2")
        model = MoETransformer(tiny_model_config(), seed=0,
                               dtype=np.float64)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=SEQ, backend="dag")
        trainer = MegaScaleTrainer(model, World(RANKS, RANKS),
                                   ParallelConfig(RANKS), train)
        assert trainer.tile_tokens == 2
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=SEQ, backend="dag", tile_tokens=4)
        trainer = MegaScaleTrainer(model, World(RANKS, RANKS),
                                   ParallelConfig(RANKS), train)
        assert trainer.tile_tokens == 4

    def test_program_cache_keys_on_tile_width(self):
        trainer, _ = run_training(2, steps=1)
        tiled = trainer.dag_program_for(SEQ)
        assert tiled.tiled
        trainer.tile_tokens = None
        assert not trainer.dag_program_for(SEQ).tiled
        trainer.tile_tokens = 2
        assert trainer.dag_program_for(SEQ) is tiled

    def test_verify_case_validation_and_id(self):
        case = VerifyCase(backend="dag", tile_tokens=2)
        assert "tt2" in case.case_id
        assert case.twin_engine().tile_tokens is None
        with pytest.raises(ValueError, match="dag"):
            VerifyCase(tile_tokens=2)
        with pytest.raises(ValueError, match="divide"):
            VerifyCase(backend="dag", tile_tokens=3)


class TestSimAndCalibration:
    def test_sim_timeline_matches_traced_tile_stream(self):
        """The simulator replays the same tile stream the execution
        traced: per tiled op, simulated start order == traced span
        order, and the full simulated order is tile-conformant."""
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        trainer, _ = run_training(2, steps=1, tracer=tracer)
        program = trainer.dag_program_for(SEQ)
        timeline = simulate(program.tile_tasks)
        sim_order = timeline.task_order()
        assert tile_conformance_problems(program, sim_order) == []

        traced = [s.name[len(TILE_SPAN_PREFIX):] for s in tracer.spans
                  if s.name.startswith(TILE_SPAN_PREFIX)]
        assert traced, "no dag.tile spans traced"
        executed = trainer.engines[0].last_executed_tiles
        # A traced op's spans cycle ascending once per chunked
        # collective call (qkv moves three tensors); the simulator and
        # the executed stream play each op's tiles ascending once.
        for base in {base_op_name(t) for t in traced}:
            tiles = [t for t in traced if base_op_name(t) == base]
            count = len(set(tiles))
            want = [tile_name(base, i) for i in range(count)]
            assert len(tiles) % count == 0
            assert tiles == want * (len(tiles) // count)
            assert [t for t in sim_order
                    if base_op_name(t) == base] == want
            assert [t for t in executed
                    if base_op_name(t) == base] == want

    def test_calibration_covers_tile_sub_ops(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        trainer, _ = run_training(2, steps=1, tracer=tracer)
        program = trainer.dag_program_for(SEQ)
        km = KernelModel(GPU_SPECS["h800"])
        # dag.op: spans cover bindings whose base op was decomposed —
        # the expansion must land on the tile sub-ops.
        by_op = calibrate_from_spans(km, program.tile_graph,
                                     tracer.spans)
        assert any("#t" in name for name in by_op.op_anchor)
        # dag.tile: spans measure each comm tile directly.
        by_tile = calibrate_from_spans(km, program.tile_graph,
                                       tracer.spans,
                                       prefix=TILE_SPAN_PREFIX)
        assert by_tile.anchors
        for anchor, cal in by_tile.anchors.items():
            assert cal.ops == (anchor,)
            assert program.tile_graph[anchor].kind == "comm"
            assert cal.scale > 0.0
