"""Tests for the PP numerical engine, ZeRO-1 sharding, checkpoints, and
the automatic scheduler."""

import os

import numpy as np
import pytest

from repro.comm import World
from repro.core import MODEL_ZOO, ModelConfig, ParallelConfig
from repro.core.autoschedule import AutoScheduler
from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.config import GPU_SPECS
from repro.core.operators import build_backward_graph
from repro.model import MoETransformer
from repro.parallel.pp_engine import PipelineParallelTrainer, \
    stage_partition
from repro.parallel.zero import Zero1AdamW, zero_memory_model
from repro.perf import KernelModel
from repro.precision.optimizer import AdamW, clip_grad_norm
from repro.tensor import Tensor

CONFIG = ModelConfig("pp-tiny", n_layers=4, hidden_size=16, n_heads=4,
                     gqa_ratio=2, ffn_hidden_size=24, n_experts=4,
                     top_k=2, vocab_size=32, seq_len=8)


class TestStagePartition:
    def test_balanced(self):
        assert [len(r) for r in stage_partition(8, 4)] == [2, 2, 2, 2]

    def test_uneven_front_loaded(self):
        assert [len(r) for r in stage_partition(7, 3)] == [3, 2, 2]

    def test_covers_all_layers(self):
        ranges = stage_partition(10, 4)
        covered = [layer for r in ranges for layer in r]
        assert covered == list(range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_partition(2, 4)
        with pytest.raises(ValueError):
            stage_partition(4, 0)


class TestPipelineParallelTrainer:
    def reference_step(self, batch, n_micro, lr=1e-2):
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        opt = AdamW(model.parameters(), lr=lr)
        model.zero_grad()
        total = None
        for micro in np.split(batch, n_micro):
            loss = model.language_model_loss(micro, aux_coeff=0.01)
            total = loss if total is None else total + loss
        total = total * (1.0 / n_micro)
        total.backward()
        clip_grad_norm(model.parameters(), 1.0)
        opt.step()
        return model, total.item()

    @pytest.mark.parametrize("n_stages,n_micro", [(2, 2), (4, 4), (2, 4)])
    def test_matches_grad_accumulation(self, rng, n_stages, n_micro):
        batch = rng.integers(0, 32, (n_micro * 2, 9))
        ref_model, ref_loss = self.reference_step(batch, n_micro)

        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        trainer = PipelineParallelTrainer(
            model, World(n_stages, 1), n_micro,
            optimizer=AdamW(model.parameters(), lr=1e-2),
            aux_loss_coeff=0.01)
        result = trainer.train_step(batch)
        assert result.loss == pytest.approx(ref_loss, abs=1e-10)
        for (name, p_ref), (_, p_pp) in zip(
                ref_model.named_parameters(), model.named_parameters()):
            np.testing.assert_allclose(p_pp.data, p_ref.data,
                                       atol=1e-10, err_msg=name)

    def test_p2p_bytes_scale_with_boundaries(self, rng):
        batch = rng.integers(0, 32, (4, 9))
        results = {}
        for n_stages in (2, 4):
            model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
            trainer = PipelineParallelTrainer(
                model, World(n_stages, 1), 2,
                optimizer=AdamW(model.parameters(), lr=1e-2))
            results[n_stages] = trainer.train_step(batch).p2p_bytes
        # p stages => p-1 boundaries, fwd + bwd each.
        assert results[4] == pytest.approx(3 * results[2])

    def test_batch_divisibility(self, rng):
        model = MoETransformer(CONFIG, seed=0)
        trainer = PipelineParallelTrainer(model, World(2, 1), 3)
        with pytest.raises(ValueError, match="divisible"):
            trainer.train_step(np.zeros((4, 9), dtype=int))

    def test_micro_losses_reported(self, rng):
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        trainer = PipelineParallelTrainer(
            model, World(2, 1), 2, aux_loss_coeff=0.01)
        result = trainer.train_step(rng.integers(0, 32, (4, 9)))
        assert len(result.micro_losses) == 2
        assert result.loss == pytest.approx(
            np.mean(result.micro_losses))


class TestZero1AdamW:
    def test_bit_identical_to_adamw(self, rng):
        shapes = [(6, 4), (10,), (3, 3, 2)]
        full_params = [Tensor(rng.standard_normal(s),
                              requires_grad=True) for s in shapes]
        zero_params = [Tensor(p.data.copy(), requires_grad=True)
                       for p in full_params]
        full = AdamW(full_params, lr=1e-2, weight_decay=0.1)
        world = World(4, 4)
        zero = Zero1AdamW(zero_params, world.full_group(), lr=1e-2,
                          weight_decay=0.1)
        for _ in range(4):
            per_rank = [[rng.standard_normal(s) for s in shapes]
                        for _ in range(4)]
            avg = [np.mean([per_rank[r][i] for r in range(4)], axis=0)
                   for i in range(len(shapes))]
            full.step(grads=avg)
            zero.step(per_rank_grads=per_rank)
        for a, b in zip(full_params, zero_params):
            np.testing.assert_allclose(b.data, a.data, atol=1e-12)

    def test_presynced_grad_path(self, rng):
        p_full = Tensor(rng.standard_normal(8), requires_grad=True)
        p_zero = Tensor(p_full.data.copy(), requires_grad=True)
        grad = rng.standard_normal(8)
        full = AdamW([p_full], lr=1e-2)
        full.step(grads=[grad])
        world = World(2, 2)
        zero = Zero1AdamW([p_zero], world.full_group(), lr=1e-2)
        p_zero.grad = grad
        zero.step()
        np.testing.assert_allclose(p_zero.data, p_full.data, atol=1e-12)

    def test_state_bytes_sharded(self, rng):
        params = [Tensor(rng.standard_normal(64), requires_grad=True)]
        world = World(4, 4)
        zero = Zero1AdamW(params, world.full_group())
        # Each rank holds master+m+v for 1/4 of the (padded) params.
        assert zero.state_nbytes_per_rank() == 3 * 16 * 8.0

    def test_comm_pattern_recorded(self, rng):
        params = [Tensor(rng.standard_normal(16), requires_grad=True)]
        world = World(4, 4)
        zero = Zero1AdamW(params, world.full_group())
        params[0].grad = rng.standard_normal(16)
        zero.step()
        counts = world.ledger.counts()
        assert counts["reduce_scatter"] == 1
        assert counts["all_gather"] == 1

    def test_grad_set_count_validated(self, rng):
        params = [Tensor(rng.standard_normal(8), requires_grad=True)]
        world = World(4, 4)
        zero = Zero1AdamW(params, world.full_group())
        with pytest.raises(ValueError, match="gradient sets"):
            zero.step(per_rank_grads=[[rng.standard_normal(8)]] * 3)


class TestZeroMemoryModel:
    def test_stage_progression(self):
        totals = [zero_memory_model(1e9, 8, stage)["total"]
                  for stage in (0, 1, 2, 3)]
        assert all(a > b for a, b in zip(totals, totals[1:]))

    def test_stage3_shards_everything(self):
        m = zero_memory_model(1e9, 8, 3)
        assert m["params"] == pytest.approx(1e9 * 2.0 / 8)
        assert m["grads"] == pytest.approx(1e9 * 4.0 / 8)
        assert m["optimizer"] == pytest.approx(1e9 * 12.0 / 8)

    def test_invalid_stage(self):
        with pytest.raises(ValueError, match="stage"):
            zero_memory_model(1e9, 8, 4)


class TestCheckpoint:
    def roundtrip(self, tmp_path, with_opt=True):
        rng = np.random.default_rng(0)
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        opt = AdamW(model.parameters(), lr=1e-2)
        ids = rng.integers(0, 32, (2, 9))
        model.language_model_loss(ids).backward()
        opt.step()
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(path, model, CONFIG,
                        opt if with_opt else None, step=11)
        return path, model, opt, ids

    def test_model_state_restored(self, tmp_path, rng):
        path, model, _, ids = self.roundtrip(tmp_path)
        fresh = MoETransformer(CONFIG, seed=99, dtype=np.float64)
        step = load_checkpoint(path, fresh, CONFIG)
        assert step == 11
        a = model.language_model_loss(ids).item()
        b = fresh.language_model_loss(ids).item()
        assert a == pytest.approx(b, abs=1e-12)

    def test_optimizer_state_restored(self, tmp_path):
        path, _, opt, _ = self.roundtrip(tmp_path)
        fresh = MoETransformer(CONFIG, seed=99, dtype=np.float64)
        fresh_opt = AdamW(fresh.parameters(), lr=1e-2)
        load_checkpoint(path, fresh, CONFIG, fresh_opt)
        assert fresh_opt.step_count == opt.step_count
        for a, b in zip(opt.m, fresh_opt.m):
            np.testing.assert_array_equal(a, b)

    def test_config_mismatch_rejected(self, tmp_path):
        path, *_ = self.roundtrip(tmp_path)
        other = ModelConfig("other", 4, 16, 4, 2, 24, 8, 2,
                            vocab_size=32, seq_len=8)
        fresh = MoETransformer(other, seed=0)
        with pytest.raises(CheckpointError, match="different model"):
            load_checkpoint(path, fresh, other)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(os.path.join(tmp_path, "nope.npz"),
                            MoETransformer(CONFIG, seed=0), CONFIG)

    def test_missing_optimizer_state(self, tmp_path):
        path, *_ = self.roundtrip(tmp_path, with_opt=False)
        fresh = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        with pytest.raises(CheckpointError, match="no optimizer"):
            load_checkpoint(path, fresh, CONFIG,
                            AdamW(fresh.parameters()))

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path, *_ = self.roundtrip(tmp_path)
        assert not os.path.exists(path + ".tmp")


class TestAtomicWrite:
    """Checkpoint writes go tmp -> fsync -> rename: an interrupted
    write must never leave a partial file at the final path."""

    def test_success_leaves_no_tmp(self, tmp_path):
        from repro.core.checkpoint import atomic_write
        path = os.path.join(tmp_path, "out.bin")
        atomic_write(path, lambda handle: handle.write(b"payload"))
        assert os.listdir(tmp_path) == ["out.bin"]
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"

    def test_crash_mid_write_preserves_previous_file(self, tmp_path):
        from repro.core.checkpoint import atomic_write
        path = os.path.join(tmp_path, "out.bin")
        atomic_write(path, lambda handle: handle.write(b"good"))

        def interrupted(handle):
            handle.write(b"partial garbage")
            raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            atomic_write(path, interrupted)
        with open(path, "rb") as handle:
            assert handle.read() == b"good"

    def test_text_mode(self, tmp_path):
        from repro.core.checkpoint import atomic_write
        path = os.path.join(tmp_path, "meta.json")
        atomic_write(path, lambda handle: handle.write('{"a": 1}'),
                     text=True)
        with open(path) as handle:
            assert handle.read() == '{"a": 1}'

    def test_save_checkpoint_is_atomic(self, tmp_path, monkeypatch):
        """A save that dies mid-serialization leaves the previous
        checkpoint loadable, not a truncated npz."""
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(path, model, CONFIG, None, step=1)

        real_savez = np.savez

        def dying_savez(handle, **payload):
            real_savez(handle, **payload)  # bytes hit the tmp file
            raise OSError("killed mid-write")

        monkeypatch.setattr(np, "savez", dying_savez)
        with pytest.raises(OSError, match="killed mid-write"):
            save_checkpoint(path, model, CONFIG, None, step=2)
        monkeypatch.undo()

        fresh = MoETransformer(CONFIG, seed=99, dtype=np.float64)
        assert load_checkpoint(path, fresh, CONFIG) == 1


class TestAutoScheduler:
    def graph_and_durations(self):
        graph = build_backward_graph(MODEL_ZOO["mixtral-8x7b"],
                                     ParallelConfig.megascale(8), 1)
        km = KernelModel(GPU_SPECS["h800"])
        return graph, km.durations(graph)

    def test_never_worse_than_holistic(self):
        graph, durations = self.graph_and_durations()
        result = AutoScheduler(budget=30, seed=0).optimize(graph,
                                                           durations)
        assert result.makespan <= result.baseline_makespan + 1e-12
        assert result.evaluations >= 1

    def test_deterministic_by_seed(self):
        graph, durations = self.graph_and_durations()
        a = AutoScheduler(budget=20, seed=5).optimize(graph, durations)
        b = AutoScheduler(budget=20, seed=5).optimize(graph, durations)
        assert a.makespan == b.makespan

    def test_result_schedule_is_valid(self):
        from repro.sim.engine import simulate
        graph, durations = self.graph_and_durations()
        result = AutoScheduler(budget=10, seed=1).optimize(graph,
                                                           durations)
        assert simulate(result.tasks).makespan == \
            pytest.approx(result.makespan)

    def test_budget_validated(self):
        with pytest.raises(ValueError, match="budget"):
            AutoScheduler(budget=0)

    def test_improves_deliberately_bad_baseline(self):
        """Against a baseline with shuffled compute order, search finds
        strictly better schedules — the automation payoff."""
        from repro.sim.engine import SimTask, simulate
        # Chain a->b with long c independent: bad order runs c first on
        # the same stream as the chain.
        tasks = [
            SimTask("c", 5.0, "compute"),
            SimTask("a", 1.0, "compute"),
            SimTask("comm", 4.0, "comm", deps=("a",), is_comm=True),
            SimTask("b", 1.0, "compute", deps=("comm",)),
        ]
        base = simulate(tasks).makespan
        # The search operates on our scheduler output normally; here we
        # directly exercise the reorder helper through a tiny search.
        from repro.core.autoschedule import _reorder_by_priority
        best = base
        rng = np.random.default_rng(0)
        for _ in range(50):
            pri = {t.name: rng.random() for t in tasks}
            cand = _reorder_by_priority(tasks, pri)
            best = min(best, simulate(cand).makespan)
        assert best < base


class TestCheckpointCorruption:
    def test_corrupt_file_rejected(self, tmp_path):
        import numpy as np
        path = os.path.join(str(tmp_path), "bad.npz")
        np.savez(path, junk=np.zeros(3))  # no __meta__
        fresh = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path, fresh, CONFIG)

    def test_version_mismatch_rejected(self, tmp_path):
        import json
        import numpy as np
        path = os.path.join(str(tmp_path), "old.npz")
        meta = json.dumps({"version": 999, "fingerprint": "x",
                           "step": 0, "has_optimizer": False})
        np.savez(path, __meta__=np.frombuffer(meta.encode(),
                                              dtype=np.uint8))
        fresh = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, fresh, CONFIG)
