"""Tests for configuration objects and the public API surface."""

import importlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    GPU_SPECS,
    MODEL_ZOO,
    ModelConfig,
    ParallelConfig,
    TrainConfig,
)
from repro.model import MoETransformer

PACKAGES = [
    "repro", "repro.core", "repro.comm", "repro.tensor", "repro.model",
    "repro.parallel", "repro.precision", "repro.perf", "repro.sim",
    "repro.baselines", "repro.data",
]


class TestPublicAPI:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"

    def test_version(self):
        import repro
        assert repro.__version__


class TestModelConfig:
    def test_zoo_matches_table2(self):
        m = MODEL_ZOO["internal-352b"]
        assert (m.n_layers, m.hidden_size, m.n_heads, m.gqa_ratio,
                m.ffn_hidden_size, m.n_experts, m.top_k) == \
            (60, 4096, 32, 4, 14336, 32, 3)
        assert MODEL_ZOO["deepseekmoe"].top_k == 6
        assert MODEL_ZOO["hunyuan-large"].gqa_ratio == 10

    def test_352b_total_params_near_name(self):
        assert MODEL_ZOO["internal-352b"].total_params == \
            pytest.approx(352e9, rel=0.05)

    def test_param_count_matches_real_model(self):
        """Config arithmetic equals the instantiated model, up to the
        final-norm weight the config's per-layer accounting excludes."""
        cfg = ModelConfig("check", 3, 32, 8, 2, 48, 8, 2,
                          vocab_size=64, seq_len=16)
        model = MoETransformer(cfg, seed=0)
        assert model.n_params() == cfg.total_params + cfg.hidden_size

    def test_activated_less_than_total(self):
        for model in MODEL_ZOO.values():
            assert model.activated_params < model.total_params

    def test_flops_scale_with_topk(self):
        base = MODEL_ZOO["mixtral-8x7b"]
        more = base.scaled(top_k=4)
        assert more.flops_per_token() > base.flops_per_token() * 1.5

    def test_causal_discount(self):
        m = MODEL_ZOO["mixtral-8x7b"]
        assert m.flops_per_token(causal=False) > \
            m.flops_per_token(causal=True)

    def test_validation(self):
        with pytest.raises(ValueError, match="gqa_ratio"):
            ModelConfig("x", 1, 32, 6, 4, 48, 8, 2)
        with pytest.raises(ValueError, match="n_heads"):
            ModelConfig("x", 1, 30, 4, 2, 48, 8, 2)
        with pytest.raises(ValueError, match="top_k"):
            ModelConfig("x", 1, 32, 4, 2, 48, 4, 5)

    @given(st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_train_flops_always_triple_forward(self, layers, k):
        cfg = ModelConfig("p", layers, 32, 8, 2, 48, 8,
                          min(k, 8), vocab_size=64, seq_len=16)
        assert cfg.train_flops_per_token() == \
            pytest.approx(3 * cfg.flops_per_token())


class TestGPUSpec:
    def test_table4_values(self):
        h800 = GPU_SPECS["h800"]
        assert h800.peak_flops == 989e12
        assert h800.nvlink_bandwidth == 400e9
        assert GPU_SPECS["a100"].nvlink_bandwidth == 600e9
        assert GPU_SPECS["h20"].memory_bandwidth == 4.0e12

    def test_ratio_ordering(self):
        assert GPU_SPECS["h800"].flops_per_byte_nvlink > \
            GPU_SPECS["a100"].flops_per_byte_nvlink > \
            GPU_SPECS["v100"].flops_per_byte_nvlink


class TestParallelConfig:
    def test_strategy_names(self):
        assert ParallelConfig.megascale(8).strategy_name == "SP+EP"
        assert ParallelConfig.megatron(8).strategy_name == "TP+TP"

    def test_total_gpus(self):
        pc = ParallelConfig.megascale(8, pipeline_size=15,
                                      data_parallel_size=12)
        assert pc.total_gpus == 1440

    def test_validation(self):
        with pytest.raises(ValueError, match="attention"):
            ParallelConfig(8, "rp", "ep")
        with pytest.raises(ValueError, match="ffn"):
            ParallelConfig(8, "sp", "pp")
        with pytest.raises(ValueError, match="ep_dispatch"):
            ParallelConfig(8, ep_dispatch="ring")
        with pytest.raises(ValueError, match="must be >= 1"):
            ParallelConfig(0)


class TestTrainConfig:
    def test_defaults_match_paper(self):
        tc = TrainConfig()
        assert tc.global_batch_size == 720
        assert tc.seq_len == 8192
        assert tc.precision == "bf16"

    def test_validation(self):
        with pytest.raises(ValueError, match="precision"):
            TrainConfig(precision="fp4")
        with pytest.raises(ValueError, match="batch"):
            TrainConfig(global_batch_size=0)
