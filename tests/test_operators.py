"""Tests for the operator-graph decomposition of an MoE layer (Fig. 20)."""

import numpy as np
import pytest

from repro.core.analysis import (
    ep_ffn_comm_volume,
    sp_attention_comm_volume,
    tp_attention_comm_volume,
    tp_ffn_comm_volume,
)
from repro.core.config import MODEL_ZOO, ParallelConfig
from repro.core.operators import (
    Op,
    OpGraph,
    build_backward_graph,
    build_forward_graph,
)
from repro.core.remat import (
    PAPER_RETAINED,
    RematPlan,
    default_remat_plan,
    no_remat_plan,
)

MODEL = MODEL_ZOO["mixtral-8x7b"]
STRATEGIES = [
    ParallelConfig.megascale(8),
    ParallelConfig.megatron(8),
    ParallelConfig(8, "sp", "tp"),
    ParallelConfig(8, "tp", "ep"),
    ParallelConfig.megascale(8, ep_dispatch="a2a"),
    ParallelConfig.megascale(8, ep_dispatch="ag_rs"),
]


class TestOpValidation:
    def test_comm_needs_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            Op("x", "comm", comm_bytes=1.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            Op("x", "magic")

    def test_graph_rejects_duplicates(self):
        a = Op("a", "memory", mem_bytes=1)
        with pytest.raises(ValueError, match="duplicate"):
            OpGraph([a, a])

    def test_graph_rejects_unknown_dep(self):
        with pytest.raises(ValueError, match="unknown op"):
            OpGraph([Op("a", "memory", deps=("ghost",))])

    def test_graph_rejects_forward_reference(self):
        a = Op("a", "memory", deps=("b",))
        b = Op("b", "memory")
        with pytest.raises(ValueError, match="before its dependency"):
            OpGraph([a, b])

    def test_graph_rejects_cycle(self):
        a = Op("a", "memory", deps=("b",))
        b = Op("b", "memory", deps=("a",))
        with pytest.raises(ValueError,
                           match="dependency cycle involving ops"):
            OpGraph([a, b])


class TestForwardGraphs:
    @pytest.mark.parametrize("parallel", STRATEGIES,
                             ids=lambda p: f"{p.strategy_name}-"
                             f"{p.ep_dispatch}")
    def test_builds_and_validates(self, parallel):
        graph = build_forward_graph(MODEL, parallel, micro_batch=1)
        assert len(graph) > 10
        assert graph.comm_ops() and graph.compute_ops()

    def test_sp_has_two_a2a(self):
        graph = build_forward_graph(MODEL, ParallelConfig.megascale(8), 1)
        a2a = [op for op in graph.comm_ops()
               if op.comm_pattern == "a2a" and "attn" in op.name
               or op.name == "qkv_a2a"]
        assert "qkv_a2a" in graph and "attn_a2a" in graph

    def test_tp_has_ag_rs(self):
        graph = build_forward_graph(MODEL, ParallelConfig.megatron(8), 1)
        assert "attn_ag" in graph and "attn_rs" in graph
        assert "ffn_ag" in graph and "ffn_rs" in graph

    def test_sp_comm_bytes_match_eq2_half(self):
        """Graph attention comm bytes = measured per-pass volume =
        Eq. 2 / 2 (Eq. 2 counts both directions)."""
        b, n = 2, 8
        pc = ParallelConfig.megascale(n)
        graph = build_forward_graph(MODEL, pc, b, elem_bytes=2.0)
        attn_comm = sum(op.comm_bytes for op in graph.comm_ops()
                        if op.name in ("qkv_a2a", "attn_a2a"))
        expected = sp_attention_comm_volume(
            b, MODEL.seq_len, MODEL.hidden_size, n, MODEL.gqa_ratio
        ) / 2.0 * 2.0  # half of Eq. 2, 2 bytes per element
        assert attn_comm == pytest.approx(expected)

    def test_tp_comm_bytes_match_eq1(self):
        b, n = 2, 8
        graph = build_forward_graph(MODEL, ParallelConfig.megatron(n), b,
                                    elem_bytes=2.0)
        attn_comm = sum(op.comm_bytes for op in graph.comm_ops()
                        if op.name in ("attn_ag", "attn_rs"))
        expected = tp_attention_comm_volume(
            b, MODEL.seq_len, MODEL.hidden_size, n) * 2.0
        assert attn_comm == pytest.approx(expected)

    def test_ep_a2a_bytes_match_eq3(self):
        b, n = 1, 8
        pc = ParallelConfig.megascale(n, ep_dispatch="a2a")
        graph = build_forward_graph(MODEL, pc, b, elem_bytes=2.0)
        ffn_comm = sum(op.comm_bytes for op in graph.comm_ops()
                       if "a2a" in op.name and "ffn" not in op.name
                       and op.name in ("dispatch_a2a", "combine_a2a"))
        expected = ep_ffn_comm_volume(
            b, MODEL.seq_len, MODEL.hidden_size, n, MODEL.top_k) * 2.0
        assert ffn_comm == pytest.approx(expected)

    def test_ep_agrs_bytes_match_eq4(self):
        b, n = 1, 8
        pc = ParallelConfig.megascale(n, ep_dispatch="ag_rs")
        graph = build_forward_graph(MODEL, pc, b, elem_bytes=2.0)
        ffn_comm = sum(op.comm_bytes for op in graph.comm_ops()
                       if op.name in ("ffn_ag", "ffn_rs"))
        expected = tp_ffn_comm_volume(
            b, MODEL.seq_len, MODEL.hidden_size, n) * 2.0
        assert ffn_comm == pytest.approx(expected)

    def test_flops_equal_across_ffn_strategies(self):
        """EP and TP FFN do the same arithmetic per rank — only shapes
        and communication differ (§3.2)."""
        ep = build_forward_graph(MODEL,
                                 ParallelConfig.megascale(8), 1)
        tp = build_forward_graph(MODEL, ParallelConfig.megatron(8), 1)
        ep_flops = sum(op.flops for op in ep if op.name.startswith("fc"))
        tp_flops = sum(op.flops for op in tp if op.name.startswith("fc"))
        assert ep_flops == pytest.approx(tp_flops)

    def test_gemm_shapes_reflect_tp_slicing(self):
        ep = build_forward_graph(MODEL, ParallelConfig.megascale(8), 1)
        tp = build_forward_graph(MODEL, ParallelConfig.megatron(8), 1)
        assert ep["fc1"].gemm_shape[2] == MODEL.ffn_hidden_size
        assert tp["fc1"].gemm_shape[2] == MODEL.ffn_hidden_size / 8

    def test_adaptive_dispatch_picks_agrs_for_large_k(self):
        model = MODEL_ZOO["deepseekmoe"]  # top-6 on 8 ranks
        graph = build_forward_graph(model, ParallelConfig.megascale(8), 1)
        assert "ffn_ag" in graph and "ffn_rs" in graph

    def test_fuse_groups_present_for_megascale(self):
        graph = build_forward_graph(MODEL, ParallelConfig.megascale(
            8, ep_dispatch="ag_rs"), 1)
        groups = {op.fuse_group for op in graph if op.fuse_group}
        assert "a2a+attn" in groups or "gemm+a2a" in groups
        assert "ag+scatter+ggemm" in groups
        assert "ggemm+gather+rs" in groups


class TestBackwardGraphs:
    @pytest.mark.parametrize("parallel", STRATEGIES,
                             ids=lambda p: f"{p.strategy_name}-"
                             f"{p.ep_dispatch}")
    def test_builds_with_and_without_remat(self, parallel):
        for remat in (True, False):
            graph = build_backward_graph(MODEL, parallel, 1,
                                         selective_remat=remat)
            assert len(graph) > 10

    def test_gemms_double_into_dgrad_wgrad(self):
        fwd = build_forward_graph(MODEL, ParallelConfig.megascale(8), 1)
        bwd = build_backward_graph(MODEL, ParallelConfig.megascale(8), 1,
                                   selective_remat=False)
        fwd_gemms = [op for op in fwd if op.kind == "gemm"]
        bwd_gemms = [op for op in bwd if op.kind == "gemm"]
        assert len(bwd_gemms) == 2 * len(fwd_gemms)
        assert bwd.total("flops", kind="gemm") == pytest.approx(
            2 * fwd.total("flops", kind="gemm"))

    def test_comm_duals(self):
        bwd = build_backward_graph(MODEL, ParallelConfig.megatron(8), 1,
                                   selective_remat=False)
        # Forward AG becomes backward RS and vice versa.
        assert bwd["attn_ag.bwd"].comm_pattern == "rs"
        assert bwd["attn_rs.bwd"].comm_pattern == "ag"

    def test_a2a_self_dual(self):
        bwd = build_backward_graph(MODEL, ParallelConfig.megascale(8), 1,
                                   selective_remat=False)
        assert bwd["qkv_a2a.bwd"].comm_pattern == "a2a"

    def test_remat_ops_inserted(self):
        bwd = build_backward_graph(MODEL, ParallelConfig.megascale(
            8, ep_dispatch="ag_rs"), 1, selective_remat=True)
        names = [op.name for op in bwd]
        assert "remat.swiglu" in names
        assert "remat.ln2" in names
        assert "remat.ffn_ag" in names
        # fc2 backward depends on the recomputed fc2_in (Fig. 8b).
        assert "remat.swiglu" in bwd["fc2.dgrad"].deps

    def test_remat_recommunication_is_comm(self):
        bwd = build_backward_graph(MODEL, ParallelConfig.megascale(
            8, ep_dispatch="ag_rs"), 1, selective_remat=True)
        assert bwd["remat.ffn_ag"].kind == "comm"
        assert bwd["remat.ffn_ag"].phase == "remat"

    def test_no_remat_ops_when_disabled(self):
        bwd = build_backward_graph(MODEL, ParallelConfig.megascale(8), 1,
                                   selective_remat=False)
        assert not [op for op in bwd if op.phase == "remat"]

    def test_remat_adds_only_cheap_work(self):
        """Rematerialization adds memory-bound and comm ops, never new
        GEMM FLOPs (§4.1: keep what is computationally expensive)."""
        with_remat = build_backward_graph(
            MODEL, ParallelConfig.megascale(8), 1, selective_remat=True)
        without = build_backward_graph(
            MODEL, ParallelConfig.megascale(8), 1, selective_remat=False)
        assert with_remat.total("flops", kind="gemm") == pytest.approx(
            without.total("flops", kind="gemm"))

    def test_retain_everything_plan_inserts_nothing(self):
        """The remat transform is plan-parametric: keeping every
        activation must be equivalent to disabling remat."""
        bwd = build_backward_graph(
            MODEL, ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1,
            selective_remat=True, remat_plan=no_remat_plan())
        assert not [op for op in bwd if op.phase == "remat"]

    def test_plan_controls_which_ops_appear(self):
        """Retaining one extra activation removes exactly its remat op."""
        plan = RematPlan(PAPER_RETAINED | {"fc2_in"})
        bwd = build_backward_graph(
            MODEL, ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1,
            selective_remat=True, remat_plan=plan)
        names = [op.name for op in bwd]
        assert "remat.swiglu" not in names  # fc2_in now stored
        assert "remat.ln2" in names  # ln2_out still recomputed

    @pytest.mark.parametrize("parallel", STRATEGIES,
                             ids=lambda p: f"{p.strategy_name}-"
                             f"{p.ep_dispatch}")
    def test_every_forward_activation_consumed_or_output(self, parallel):
        """No dead ops: everything the forward graph produces is
        either consumed by a downstream op or is the layer output."""
        fwd = build_forward_graph(MODEL, parallel, 1)
        consumed = {dep for op in fwd for dep in op.deps}
        for op in fwd:
            assert op.name in consumed or op.name == "residual2", \
                f"op {op.name} is produced but never consumed"

    def test_paper_retained_set_matches_produced_activations(self):
        """The retention decision set stays in sync with the IR: every
        activation the paper's plan stores is actually produced by the
        MegaScale forward graph (or is the layer input)."""
        fwd = build_forward_graph(MODEL, ParallelConfig.megascale(
            8, ep_dispatch="a2a"), 1)
        produced = {name for op in fwd for name in op.produces}
        produced.add("hidden")  # the layer input
        assert default_remat_plan().retained <= produced
