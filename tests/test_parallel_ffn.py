"""Equivalence tests: EP (both dispatch modes) and TP FFN engines."""

import numpy as np
import pytest

from repro.comm import World
from repro.core.analysis import ep_ffn_comm_volume, tp_ffn_comm_volume
from repro.model.moe import MoELayer
from repro.parallel.ep_ffn import (
    EPFFNEngine,
    choose_dispatch_mode,
)
from repro.parallel.tp_ffn import TPFFNEngine
from repro.tensor import Tensor


def run_reference(rng, moe, x):
    xt = Tensor(x, requires_grad=True)
    out = moe(xt)
    g = rng.standard_normal(out.hidden.shape)
    scalar = (out.hidden * Tensor(g)).sum() + out.aux_loss
    scalar.backward()
    ref = {
        "out": out.hidden.data.copy(),
        "aux": out.aux_loss.item(),
        "dx": xt.grad.copy(),
        "d_gate": moe.router.gate.weight.grad.copy(),
        "d_experts": [
            {key: getattr(e, key).grad.copy()
             if getattr(e, key).grad is not None
             else np.zeros(getattr(e, key).shape)
             for key in ("fc1", "fc3", "fc2")}
            for e in moe.experts
        ],
        "g": g,
    }
    moe.zero_grad()
    return ref


def shard_seq(x, n):
    s = x.shape[1]
    return [Tensor(x[:, r * s // n:(r + 1) * s // n].copy(),
                   requires_grad=True) for r in range(n)]


CONFIGS = [
    # (batch, seq, hidden, ffn_hidden, experts, top_k, n_ranks)
    (2, 8, 16, 24, 8, 2, 4),
    (1, 16, 8, 12, 4, 1, 2),
    (2, 8, 16, 24, 8, 6, 4),   # top_k > 0.75n: AG/RS territory
    (1, 8, 8, 16, 8, 3, 8),
]


def check_engine_matches(rng, moe, x, engine_factory, n):
    ref = run_reference(rng, moe, x)
    world = World(n, n)
    engine = engine_factory(world.full_group(), moe)
    shards = shard_seq(x, n)
    result = engine.forward(shards)
    if isinstance(result, tuple):  # TP engine
        outs, aux = result
    else:
        outs, aux = result.output_shards, result.aux_loss
    full = np.concatenate([o.data for o in outs], axis=1)
    np.testing.assert_allclose(full, ref["out"], atol=1e-9)
    assert aux.item() == pytest.approx(ref["aux"], abs=1e-10)

    w = x.shape[1] // n
    scalar = None
    for r, out in enumerate(outs):
        piece = (out * Tensor(ref["g"][:, r * w:(r + 1) * w])).sum()
        scalar = piece if scalar is None else scalar + piece
    scalar = scalar + aux
    scalar.backward()

    dx = np.concatenate([sh.grad for sh in shards], axis=1)
    np.testing.assert_allclose(dx, ref["dx"], atol=1e-9)
    np.testing.assert_allclose(moe.router.gate.weight.grad,
                               ref["d_gate"], atol=1e-9)
    return world, engine, ref


class TestEPA2A:
    @pytest.mark.parametrize("b,s,h,fh,E,k,n", CONFIGS)
    def test_matches_reference(self, b, s, h, fh, E, k, n):
        rng = np.random.default_rng(b * 10 + s + k)
        moe = MoELayer(rng, h, fh, E, k, dtype=np.float64)
        x = rng.standard_normal((b, s, h))
        world, engine, ref = check_engine_matches(
            rng, moe, x,
            lambda g, m: EPFFNEngine(g, m, mode="a2a"), n)
        for e, expert in enumerate(moe.experts):
            for key in ("fc1", "fc3", "fc2"):
                grad = getattr(expert, key).grad
                if grad is None:
                    grad = np.zeros(ref["d_experts"][e][key].shape)
                np.testing.assert_allclose(grad, ref["d_experts"][e][key],
                                           atol=1e-9, err_msg=f"{e}:{key}")

    def test_forward_volume_within_hard_bound(self, rng):
        """A2A dispatch volume never exceeds the all-remote hard bound
        (every routed row leaving its rank); Eq. 3 is the expectation
        under uniform routing, approached on average."""
        b, s, h, fh, E, k, n = 2, 16, 16, 24, 8, 2, 4
        moe = MoELayer(rng, h, fh, E, k, dtype=np.float64)
        world = World(n, n)
        engine = EPFFNEngine(world.full_group(), moe, mode="a2a")
        world.ledger.clear()
        engine.forward(shard_seq(rng.standard_normal((b, s, h)), n))
        measured = sum(
            r.total_bytes for r in world.ledger.records
            if r.tag.startswith("ep_ffn") and not r.tag.endswith(":bwd")
        ) / 8.0
        hard_bound = 2 * k * b * s * h  # all rows remote, both passes
        assert measured <= hard_bound + 1e-9

    def test_expected_volume_close_to_eq3(self):
        """Averaged over random routing, the A2A volume approaches Eq. 3."""
        rng = np.random.default_rng(0)
        b, s, h, fh, E, k, n = 4, 32, 16, 24, 8, 2, 4
        moe = MoELayer(rng, h, fh, E, k, dtype=np.float64)
        world = World(n, n)
        engine = EPFFNEngine(world.full_group(), moe, mode="a2a")
        world.ledger.clear()
        engine.forward(shard_seq(rng.standard_normal((b, s, h)), n))
        measured = sum(
            r.total_bytes for r in world.ledger.records
            if r.tag.startswith("ep_ffn") and not r.tag.endswith(":bwd")
        ) / 8.0
        bound = ep_ffn_comm_volume(b, s, h, n, k) * n
        assert measured == pytest.approx(bound, rel=0.25)


class TestEPAgRs:
    @pytest.mark.parametrize("b,s,h,fh,E,k,n", CONFIGS)
    def test_matches_reference(self, b, s, h, fh, E, k, n):
        rng = np.random.default_rng(b * 10 + s + k + 1)
        moe = MoELayer(rng, h, fh, E, k, dtype=np.float64)
        x = rng.standard_normal((b, s, h))
        check_engine_matches(
            rng, moe, x,
            lambda g, m: EPFFNEngine(g, m, mode="ag_rs"), n)

    def test_volume_equals_eq4_regardless_of_k(self, rng):
        """AG/RS dispatch volume equals TP's Eq. 4 and is independent of
        top-k — the §3.2 guarantee."""
        b, s, h, n = 2, 8, 16, 4
        volumes = []
        for k in (1, 3, 6):
            moe = MoELayer(np.random.default_rng(k), h, 24, 8, k,
                           dtype=np.float64)
            world = World(n, n)
            engine = EPFFNEngine(world.full_group(), moe, mode="ag_rs")
            world.ledger.clear()
            engine.forward(shard_seq(
                np.random.default_rng(k).standard_normal((b, s, h)), n))
            volumes.append(sum(
                r.total_bytes for r in world.ledger.records
                if r.tag.startswith("ep_ffn")
                and not r.tag.endswith(":bwd")) / 8.0)
        expected = tp_ffn_comm_volume(b, s, h, n) * n
        for v in volumes:
            assert v == pytest.approx(expected)

    def test_expert_divisibility_required(self, rng):
        moe = MoELayer(rng, 8, 12, 6, 2)
        world = World(4, 4)
        with pytest.raises(ValueError, match="not divisible"):
            EPFFNEngine(world.full_group(), moe)


class TestAdaptiveMode:
    def test_small_k_uses_a2a(self):
        assert choose_dispatch_mode(top_k=2, ep_size=8) == "a2a"

    def test_large_k_uses_ag_rs(self):
        assert choose_dispatch_mode(top_k=6, ep_size=8) == "ag_rs"
        assert choose_dispatch_mode(top_k=8, ep_size=8) == "ag_rs"

    def test_engine_adopts_adaptive_choice(self, rng):
        moe = MoELayer(rng, 8, 12, 8, 6)
        world = World(8, 8)
        engine = EPFFNEngine(world.full_group(), moe, mode="adaptive")
        assert engine.mode == "ag_rs"

    def test_invalid_mode(self, rng):
        moe = MoELayer(rng, 8, 12, 8, 2)
        world = World(4, 4)
        with pytest.raises(ValueError, match="dispatch mode"):
            EPFFNEngine(world.full_group(), moe, mode="ring")


class TestTPFFN:
    @pytest.mark.parametrize("b,s,h,fh,E,k,n", CONFIGS)
    def test_matches_reference(self, b, s, h, fh, E, k, n):
        rng = np.random.default_rng(b * 10 + s + k + 2)
        moe = MoELayer(rng, h, fh, E, k, dtype=np.float64)
        x = rng.standard_normal((b, s, h))
        world, engine, ref = check_engine_matches(
            rng, moe, x, TPFFNEngine, n)
        grads = engine.reference_weight_grads()
        for e in range(E):
            for key in ("fc1", "fc3", "fc2"):
                np.testing.assert_allclose(grads[e][key],
                                           ref["d_experts"][e][key],
                                           atol=1e-9, err_msg=f"{e}:{key}")

    def test_volume_matches_eq4(self, rng):
        b, s, h, fh, E, k, n = 2, 8, 16, 24, 8, 2, 4
        moe = MoELayer(rng, h, fh, E, k, dtype=np.float64)
        world = World(n, n)
        engine = TPFFNEngine(world.full_group(), moe)
        world.ledger.clear()
        engine.forward(shard_seq(rng.standard_normal((b, s, h)), n))
        measured = sum(
            r.total_bytes for r in world.ledger.records
            if r.tag.startswith("tp_ffn") and not r.tag.endswith(":bwd")
        ) / 8.0
        assert measured == pytest.approx(tp_ffn_comm_volume(b, s, h, n) * n)

    def test_ffn_divisibility_required(self, rng):
        moe = MoELayer(rng, 8, 10, 4, 2)
        world = World(4, 4)
        with pytest.raises(ValueError, match="not divisible"):
            TPFFNEngine(world.full_group(), moe)
