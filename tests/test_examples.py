"""Smoke tests: every example script runs to completion and prints the
artifacts it promises."""

import os
import subprocess
import sys


EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "communication ledger" in out
        assert "single-rank reference final loss" in out

    def test_plan_cluster_job(self):
        out = run_example("plan_cluster_job.py", "mixtral-8x7b", "64",
                          "h800")
        assert "SP+EP" in out
        assert "scale-up check" in out
        assert "memory/GPU" in out

    def test_fp8_training(self):
        out = run_example("fp8_training.py")
        assert "Fig. 18 miniature" in out
        assert "Fig. 17 miniature" in out
        assert "paper: 50%" in out

    def test_overlap_explorer(self):
        out = run_example("overlap_explorer.py", "mixtral-8x7b")
        assert "no overlap (Megatron-style)" in out
        assert "inter + intra-operator overlap" in out
        assert "rematerialization work" in out

    def test_production_run(self):
        out = run_example("production_run.py")
        assert "restarts: 3" in out
        assert "metrics.csv" in out
