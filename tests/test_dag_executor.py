"""DAG executor: schedule-ordered numeric execution of the operator IR.

The contract under test is the tentpole invariant: running a layer
through :class:`~repro.runtime.dag_executor.DagExecutor` — in the
overlap schedule's flattened order, sequential or thread-per-rank —
must be *bitwise identical* to the legacy engine call chains, and the
executed op sequence must be a valid topological order of both the op
graph and the scheduled task list.
"""

import dataclasses

import numpy as np
import pytest

from repro.comm import World
from repro.core import MegaScaleTrainer, ParallelConfig, TrainConfig
from repro.core.config import GPU_SPECS
from repro.core.executor_bindings import (
    LayerProgram,
    build_layer_bindings,
    expand_task,
    layer_program,
)
from repro.core.remat import default_remat_plan, no_remat_plan
from repro.model import MoETransformer
from repro.model.transformer import TransformerBlock
from repro.obs import Observability
from repro.parallel import ParallelBlockEngine, shard_sequence
from repro.perf.estimator import (
    KernelModel,
    calibrate_from_spans,
    calibrated_durations,
)
from repro.runtime import (
    DagExecutor,
    SpmdExecutor,
    resolve_backend,
    schedule_conformance_problems,
)

RANKS = 4
SEQ = 8

COMBOS = [
    ("sp", "ep", "a2a"),
    ("sp", "ep", "ag_rs"),
    ("tp", "ep", "a2a"),
    ("sp", "tp", "a2a"),
    ("tp", "tp", "a2a"),
]


def make_engine(tiny_config, attn, ffn, dispatch, fp8=False):
    block = TransformerBlock(np.random.default_rng(0), tiny_config,
                             dtype=np.float64)
    world = World(RANKS, RANKS)
    engine = ParallelBlockEngine(world.full_group(), block, attn, ffn,
                                 ep_mode=dispatch, fp8_comm=fp8)
    return world, engine


def make_program(tiny_config, attn, ffn, dispatch, batch=2, seq=SEQ):
    parallel = ParallelConfig(RANKS, attention=attn, ffn=ffn,
                              ep_dispatch=dispatch)
    return layer_program(tiny_config, parallel, batch, seq)


@pytest.fixture
def layer_input(rng, tiny_config):
    return rng.standard_normal((2, SEQ, tiny_config.hidden_size))


class TestDagMatchesEngine:
    @pytest.mark.parametrize("attn,ffn,dispatch", COMBOS)
    def test_forward_bitwise(self, tiny_config, layer_input, attn, ffn,
                             dispatch):
        _, legacy = make_engine(tiny_config, attn, ffn, dispatch)
        outs_ref, aux_ref = legacy.forward(
            shard_sequence(layer_input, RANKS), SEQ)

        _, engine = make_engine(tiny_config, attn, ffn, dispatch)
        program = make_program(tiny_config, attn, ffn, dispatch)
        outs, aux = engine.forward(shard_sequence(layer_input, RANKS),
                                   SEQ, dag_program=program)
        for a, b in zip(outs, outs_ref):
            np.testing.assert_array_equal(a.data, b.data)
        assert aux.item() == aux_ref.item()

    @pytest.mark.parametrize("attn,ffn,dispatch", [
        ("sp", "ep", "ag_rs"), ("sp", "tp", "a2a"),
    ])
    def test_forward_bitwise_fp8(self, tiny_config, layer_input, attn,
                                 ffn, dispatch):
        _, legacy = make_engine(tiny_config, attn, ffn, dispatch,
                                fp8=True)
        outs_ref, _ = legacy.forward(
            shard_sequence(layer_input, RANKS), SEQ)

        _, engine = make_engine(tiny_config, attn, ffn, dispatch,
                                fp8=True)
        program = make_program(tiny_config, attn, ffn, dispatch)
        outs, _ = engine.forward(shard_sequence(layer_input, RANKS),
                                 SEQ, dag_program=program)
        for a, b in zip(outs, outs_ref):
            np.testing.assert_array_equal(a.data, b.data)

    def test_threaded_dag_matches_sequential_dag(self, tiny_config,
                                                 layer_input):
        _, seq_engine = make_engine(tiny_config, "sp", "ep", "a2a")
        program = make_program(tiny_config, "sp", "ep", "a2a")
        outs_ref, aux_ref = seq_engine.forward(
            shard_sequence(layer_input, RANKS), SEQ,
            dag_program=program)

        _, thr_engine = make_engine(tiny_config, "sp", "ep", "a2a")
        executor = SpmdExecutor()
        outs, aux = thr_engine.forward(
            shard_sequence(layer_input, RANKS), SEQ, executor=executor,
            dag_program=program)
        for a, b in zip(outs, outs_ref):
            np.testing.assert_array_equal(a.data, b.data)
        assert aux.item() == aux_ref.item()

    def test_shuffled_valid_topo_order_is_bitwise_identical(
            self, tiny_config, layer_input):
        """Any valid topological order must produce the same bits —
        op results depend on the graph structure, not the schedule."""
        program = make_program(tiny_config, "sp", "ep", "a2a")
        _, engine = make_engine(tiny_config, "sp", "ep", "a2a")
        outs_ref, _ = engine.forward(shard_sequence(layer_input, RANKS),
                                     SEQ, dag_program=program)

        rng = np.random.default_rng(7)
        order = _random_topo_order(program.graph, rng)
        assert order != program.order  # actually a different order
        shuffled = LayerProgram(graph=program.graph,
                                tasks=program.tasks, order=order,
                                durations=program.durations)
        _, engine2 = make_engine(tiny_config, "sp", "ep", "a2a")
        outs, _ = engine2.forward(shard_sequence(layer_input, RANKS),
                                  SEQ, dag_program=shuffled)
        for a, b in zip(outs, outs_ref):
            np.testing.assert_array_equal(a.data, b.data)


def _random_topo_order(graph, rng):
    """A random valid topological order via seeded Kahn's algorithm."""
    remaining = {op.name: set(op.deps) for op in graph}
    order = []
    while remaining:
        ready = sorted(n for n, deps in remaining.items() if not deps)
        pick = ready[int(rng.integers(len(ready)))]
        order.append(pick)
        del remaining[pick]
        for deps in remaining.values():
            deps.discard(pick)
    return order


class TestScheduleConformance:
    def test_executed_order_conforms(self, tiny_config, layer_input):
        program = make_program(tiny_config, "sp", "ep", "a2a")
        _, engine = make_engine(tiny_config, "sp", "ep", "a2a")
        engine.forward(shard_sequence(layer_input, RANKS), SEQ,
                       dag_program=program)
        assert engine.last_executed_ops is not None
        problems = schedule_conformance_problems(
            program, engine.last_executed_ops)
        assert problems == []

    def test_detects_missing_op(self, tiny_config):
        program = make_program(tiny_config, "sp", "ep", "a2a")
        problems = schedule_conformance_problems(program,
                                                 program.order[:-1])
        assert any("not a permutation" in p for p in problems)

    def test_detects_dependency_violation(self, tiny_config):
        program = make_program(tiny_config, "sp", "ep", "a2a")
        problems = schedule_conformance_problems(
            program, list(reversed(program.order)))
        assert any("before its dependency" in p for p in problems)

    def test_random_topo_orders_conform(self, tiny_config):
        """Today's task deps are exactly the member ops' data deps, so
        every graph-valid order also respects the unit schedule."""
        program = make_program(tiny_config, "sp", "ep", "ag_rs")
        rng = np.random.default_rng(3)
        for _ in range(20):
            order = _random_topo_order(program.graph, rng)
            assert schedule_conformance_problems(program, order) == []

    def test_detects_unit_order_violation(self):
        """The unit-level check is defense-in-depth: it catches a
        scheduler-added edge (e.g. comm-stream serialization) that the
        op graph alone does not imply."""
        from repro.core.operators import Op, OpGraph
        from repro.sim.engine import SimTask
        graph = OpGraph([
            Op("a", "memory", mem_bytes=1.0),
            Op("b", "memory", mem_bytes=1.0),
            Op("c", "memory", mem_bytes=1.0, deps=("a", "b")),
        ])
        tasks = [
            SimTask("a", 1.0, "main"),
            SimTask("b", 1.0, "main", deps=("a",)),  # non-data edge
            SimTask("c", 1.0, "main", deps=("a", "b")),
        ]
        program = LayerProgram(graph=graph, tasks=tasks,
                               order=["a", "b", "c"])
        assert schedule_conformance_problems(
            program, ["a", "b", "c"]) == []
        problems = schedule_conformance_problems(program,
                                                 ["b", "a", "c"])
        assert any("scheduled dependency" in p for p in problems)


class TestExecutorValidation:
    @pytest.fixture
    def pieces(self, tiny_config):
        program = make_program(tiny_config, "sp", "ep", "a2a")
        world, engine = make_engine(tiny_config, "sp", "ep", "a2a")
        bindings = build_layer_bindings(engine, SEQ)
        return program, bindings, world.full_group()

    def test_valid_construction(self, pieces):
        program, bindings, group = pieces
        DagExecutor(program, bindings, group)

    def test_order_must_be_permutation(self, pieces):
        program, bindings, group = pieces
        bad = dataclasses.replace(program, order=program.order[:-1])
        with pytest.raises(ValueError, match="not a permutation"):
            DagExecutor(bad, bindings, group)

    def test_order_must_be_topological(self, pieces):
        program, bindings, group = pieces
        bad = dataclasses.replace(
            program, order=program.order[1:] + program.order[:1])
        with pytest.raises(ValueError, match="before its dependency"):
            DagExecutor(bad, bindings, group)

    def test_every_op_needs_a_binding(self, pieces):
        program, bindings, group = pieces
        with pytest.raises(ValueError, match="not covered"):
            DagExecutor(program, bindings[:-1], group)

    def test_no_double_coverage(self, pieces):
        program, bindings, group = pieces
        with pytest.raises(ValueError, match="covered by both"):
            DagExecutor(program, bindings + [bindings[0]], group)

    def test_reads_must_resolve(self, pieces):
        program, bindings, group = pieces
        broken = [dataclasses.replace(b, reads=b.reads + ("ghost",))
                  if b.op == "ln2" else b for b in bindings]
        with pytest.raises(ValueError, match="reads 'ghost'"):
            DagExecutor(program, broken, group)

    def test_run_requires_inputs(self, pieces):
        program, bindings, group = pieces
        dag = DagExecutor(program, bindings, group)
        with pytest.raises(ValueError, match="missing layer inputs"):
            dag.run({})

    def test_expand_task_roundtrip(self, pieces):
        program = pieces[0]
        expanded = [name for task in program.tasks
                    for name in expand_task(program.graph, task.name)]
        assert expanded == program.order
        assert sorted(expanded) == sorted(
            op.name for op in program.graph)


class TestRematTransform:
    def test_default_plan_drops_recomputed_anchors(self, tiny_config,
                                                   layer_input):
        program = make_program(tiny_config, "sp", "ep", "a2a")
        _, engine = make_engine(tiny_config, "sp", "ep", "a2a")
        engine.forward(shard_sequence(layer_input, RANKS), SEQ,
                       dag_program=program,
                       remat_plan=default_remat_plan())
        report = engine.last_remat_report
        assert report is not None
        # ln1 produces only ln1_out, which the paper's plan recomputes.
        assert "ln1" in report["dropped"]
        # The layer output and the residual feeding ln2_in survive.
        assert "residual2" in report["kept"]
        assert "residual1" in report["kept"]

    def test_retain_everything_drops_nothing(self, tiny_config,
                                             layer_input):
        program = make_program(tiny_config, "sp", "ep", "a2a")
        _, engine = make_engine(tiny_config, "sp", "ep", "a2a")
        engine.forward(shard_sequence(layer_input, RANKS), SEQ,
                       dag_program=program, remat_plan=no_remat_plan())
        assert engine.last_remat_report["dropped"] == []

    def test_no_plan_no_report(self, tiny_config, layer_input):
        program = make_program(tiny_config, "sp", "ep", "a2a")
        _, engine = make_engine(tiny_config, "sp", "ep", "a2a")
        engine.forward(shard_sequence(layer_input, RANKS), SEQ,
                       dag_program=program)
        assert engine.last_remat_report is None


class TestSpanCalibration:
    def test_traced_run_calibrates_estimator(self, tiny_config,
                                             layer_input):
        obs = Observability.create()
        world, engine = make_engine(tiny_config, "sp", "ep", "a2a")
        world.attach_tracer(obs.tracer)
        program = make_program(tiny_config, "sp", "ep", "a2a")
        engine.forward(shard_sequence(layer_input, RANKS), SEQ,
                       dag_program=program)

        model = KernelModel(GPU_SPECS["h800"])
        report = calibrate_from_spans(model, program.graph,
                                      obs.tracer.spans)
        anchors = report.anchors
        assert anchors  # the dag.op:* spans were found
        assert all(a.samples >= 1 for a in anchors.values())
        assert all(a.predicted > 0.0 for a in anchors.values())
        # Every graph op maps to a traced anchor (covers partition).
        assert set(report.op_anchor) == {op.name
                                         for op in program.graph}

        durations = calibrated_durations(model, program.graph, report)
        assert set(durations) == {op.name for op in program.graph}
        assert all(d >= 0.0 for d in durations.values())
        # Scaling is exact per anchor: measured == scale * predicted.
        for cal in anchors.values():
            assert cal.scale * cal.predicted == pytest.approx(
                cal.measured)


class TestBackendResolution:
    def test_default_is_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend() == "engine"

    def test_env_selects_dag(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dag")
        assert resolve_backend() == "dag"

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dag")
        assert resolve_backend("engine") == "engine"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda-graphs")

    def test_train_config_validates_backend(self):
        with pytest.raises(ValueError, match="backend"):
            TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=SEQ, backend="cuda-graphs")


class TestTrainerBackend:
    def run_steps(self, tiny_config, backend, execution="sequential"):
        model = MoETransformer(tiny_config, seed=0, dtype=np.float64)
        world = World(RANKS, RANKS)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=tiny_config.seq_len,
                            learning_rate=1e-2, backend=backend,
                            execution=execution)
        trainer = MegaScaleTrainer(model, world,
                                   ParallelConfig.megascale(RANKS),
                                   train)
        rng = np.random.default_rng(0)
        losses = []
        for _ in range(2):
            batch = rng.integers(
                0, tiny_config.vocab_size,
                size=(2, tiny_config.seq_len + 1))
            losses.append(trainer.train_step(batch).loss)
        params = {name: p.data.copy()
                  for name, p in model.named_parameters()}
        return losses, params, trainer

    def test_dag_backend_trains_bitwise_identically(self, tiny_config):
        ref_losses, ref_params, _ = self.run_steps(tiny_config,
                                                   "engine")
        losses, params, trainer = self.run_steps(tiny_config, "dag")
        assert losses == ref_losses
        for name in ref_params:
            np.testing.assert_array_equal(params[name],
                                          ref_params[name])
        assert trainer.backend == "dag"
        for engine in trainer.engines:
            assert engine.last_executed_ops is not None

    def test_threaded_dag_backend_bitwise(self, tiny_config):
        ref_losses, ref_params, _ = self.run_steps(tiny_config,
                                                   "engine")
        losses, params, _ = self.run_steps(tiny_config, "dag",
                                           execution="threaded")
        assert losses == ref_losses
        for name in ref_params:
            np.testing.assert_array_equal(params[name],
                                          ref_params[name])
