"""Tests for low-precision format emulation (BF16, FP8 E4M3/E5M2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.formats import (
    BF16,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    get_format,
    round_bf16,
    round_fp8,
    round_to_format,
)


class TestFormatMetadata:
    def test_e4m3_bias(self):
        assert FP8_E4M3.exponent_bias == 7

    def test_e5m2_bias(self):
        assert FP8_E5M2.exponent_bias == 15

    def test_bf16_bias_matches_fp32(self):
        assert BF16.exponent_bias == FP32.exponent_bias == 127

    def test_e4m3_max(self):
        # S.1111.110 = 1.75 * 2^8 = 448 per the OCP FP8 spec.
        assert FP8_E4M3.max_value == 448.0

    def test_e5m2_max(self):
        assert FP8_E5M2.max_value == 57344.0

    def test_epsilon(self):
        assert FP8_E4M3.epsilon == 0.125
        assert BF16.epsilon == 2 ** -7

    def test_wire_bytes(self):
        assert FP8_E4M3.bytes_per_element == 1.0
        assert BF16.bytes_per_element == 2.0
        assert FP32.bytes_per_element == 4.0

    def test_get_format(self):
        assert get_format("fp8_e4m3") is FP8_E4M3
        assert get_format("bf16") is BF16

    def test_get_format_unknown(self):
        with pytest.raises(ValueError, match="unknown float format"):
            get_format("fp7")


class TestBF16:
    def test_exact_values_unchanged(self):
        # Values with <= 8 mantissa bits are exactly representable.
        vals = np.array([0.0, 1.0, -2.5, 0.15625, 3.140625, 1024.0])
        out = round_bf16(vals)
        np.testing.assert_array_equal(out, vals.astype(np.float32))

    def test_rounds_to_nearest(self):
        # 1 + 2^-8 is exactly between 1.0 and 1 + 2^-7; RNE picks 1.0
        # (even mantissa).
        assert round_bf16(np.array([1.0 + 2 ** -8]))[0] == 1.0
        # 1 + 3*2^-8 is between 1+2^-7 and 1+2^-6; RNE picks 1+2^-6.
        assert round_bf16(np.array([1.0 + 3 * 2 ** -8]))[0] == \
            np.float32(1.0 + 2 ** -6)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(10000) * 10.0 ** rng.integers(-10, 10, 10000)
        out = round_bf16(x)
        rel = np.abs(out - x.astype(np.float32)) / np.abs(x)
        assert rel.max() <= 2 ** -8  # half ulp of 7-bit mantissa

    def test_nan_passthrough(self):
        out = round_bf16(np.array([np.nan, 1.0]))
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_inf_passthrough(self):
        out = round_bf16(np.array([np.inf, -np.inf]))
        assert np.isposinf(out[0]) and np.isneginf(out[1])

    def test_sign_symmetry(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(1000)
        np.testing.assert_array_equal(round_bf16(x), -round_bf16(-x))

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(1000)
        once = round_bf16(x)
        np.testing.assert_array_equal(round_bf16(once), once)


class TestFP8:
    def test_exact_small_integers(self):
        vals = np.array([0.0, 1.0, -2.0, 3.5, 0.125, 448.0, -448.0])
        np.testing.assert_array_equal(round_fp8(vals), vals)

    def test_saturates(self):
        out = round_fp8(np.array([500.0, -10000.0, np.inf, -np.inf]))
        np.testing.assert_array_equal(out, [448.0, -448.0, 448.0, -448.0])

    def test_e5m2_range(self):
        out = round_fp8(np.array([60000.0]), FP8_E5M2)
        assert out[0] == FP8_E5M2.max_value

    def test_nan_passthrough(self):
        assert np.isnan(round_fp8(np.array([np.nan]))[0])

    def test_rne_midpoint(self):
        # Between 1.0 and 1.125 (e4m3 step at 1.0 is 1/8): 1.0625 -> 1.0.
        assert round_fp8(np.array([1.0625]))[0] == 1.0
        # Between 1.125 and 1.25: 1.1875 -> 1.25 (even mantissa).
        assert round_fp8(np.array([1.1875]))[0] == 1.25

    def test_power_of_two_exact(self):
        powers = 2.0 ** np.arange(-6, 9)
        np.testing.assert_array_equal(round_fp8(powers), powers)

    def test_subnormal_grid(self):
        # E4M3 subnormal step = 2^-9; smallest subnormal 2^-9.
        assert round_fp8(np.array([2.0 ** -9]))[0] == 2.0 ** -9
        assert round_fp8(np.array([2.0 ** -11]))[0] == 0.0  # below half-step

    def test_relative_error_bound_normals(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0.02, 400, 5000) * rng.choice([-1, 1], 5000)
        out = round_fp8(x)
        rel = np.abs(out - x) / np.abs(x)
        assert rel.max() <= 2 ** -4  # half ulp of 3-bit mantissa

    def test_rejects_wide_formats(self):
        with pytest.raises(ValueError, match="expects an FP8 format"):
            round_fp8(np.zeros(3), BF16)

    @given(st.floats(min_value=-448, max_value=448,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_rounding_is_idempotent(self, x):
        once = round_fp8(np.array([x]))
        twice = round_fp8(once)
        np.testing.assert_array_equal(once, twice)

    @given(st.floats(min_value=1e-3, max_value=400.0))
    @settings(max_examples=200, deadline=None)
    def test_monotonic(self, x):
        lo = round_fp8(np.array([x]))[0]
        hi = round_fp8(np.array([x * 1.5]))[0]
        assert lo <= hi


class TestRoundToFormat:
    def test_fp32_copy(self):
        x = np.array([1.1, 2.2])
        out = round_to_format(x, FP32)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, x.astype(np.float32))

    def test_fp16_max(self):
        assert round_to_format(np.array([70000.0]), FP16)[0] == 65504.0

    def test_bf16_dispatch(self):
        x = np.random.default_rng(4).standard_normal(100)
        np.testing.assert_array_equal(round_to_format(x, BF16),
                                      round_bf16(x))

    def test_zero_preserved(self):
        for fmt in (FP8_E4M3, FP8_E5M2, FP16, BF16):
            assert round_to_format(np.array([0.0]), fmt)[0] == 0.0
