"""Tests for gradient checkpointing and numerical selective remat."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.model import MoETransformer
from repro.model.layers import SelfAttention
from repro.tensor import Tensor
from repro.tensor.checkpoint import (
    checkpoint_segment,
    tape_live_bytes,
    tape_saved_arrays,
)

CONFIG = ModelConfig("ckpt", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=96, n_experts=8,
                     top_k=2, vocab_size=32, seq_len=32)


class TestCheckpointSegment:
    def test_forward_value_identical(self, rng):
        x = Tensor(rng.standard_normal((4, 8)), requires_grad=True)
        w = Tensor(rng.standard_normal((8, 8)), requires_grad=True)
        direct = (x @ w).silu()
        ckpt = checkpoint_segment(lambda a: (a @ w).silu(), x)
        np.testing.assert_array_equal(ckpt.data, direct.data)

    def test_gradients_exact(self, rng):
        x_a = Tensor(rng.standard_normal((4, 8)), requires_grad=True)
        x_b = Tensor(x_a.data.copy(), requires_grad=True)
        w = Tensor(rng.standard_normal((8, 8)), requires_grad=True)

        (x_a @ w).silu().sum().backward()
        ref_dx, ref_dw = x_a.grad.copy(), w.grad.copy()
        w.zero_grad()

        checkpoint_segment(lambda a: (a @ w).silu(), x_b).sum().backward()
        np.testing.assert_allclose(x_b.grad, ref_dx, atol=1e-12)
        np.testing.assert_allclose(w.grad, ref_dw, atol=1e-12)

    def test_multi_input_segment(self, rng):
        a = Tensor(rng.standard_normal((4, 8)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 8)), requires_grad=True)
        out = checkpoint_segment(lambda x, y: x.silu() * y, a, b)
        out.sum().backward()
        assert a.grad is not None and b.grad is not None

    def test_non_tensor_return_rejected(self, rng):
        x = Tensor(rng.standard_normal(4), requires_grad=True)
        with pytest.raises(TypeError, match="return a Tensor"):
            checkpoint_segment(lambda a: a.data, x)

    def test_tape_drops_intermediates(self, rng):
        x = Tensor(rng.standard_normal((64, 64)), requires_grad=True)

        def deep(a):
            for _ in range(6):
                a = a.silu() * 1.0001
            return a

        plain_bytes = tape_live_bytes(deep(x))
        ckpt_bytes = tape_live_bytes(checkpoint_segment(deep, x))
        assert ckpt_bytes < 0.4 * plain_bytes

    def test_nested_checkpoints(self, rng):
        x = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
        def inner(a):
            return a.silu()

        def outer(a):
            return checkpoint_segment(inner, a) * 2.0


        out = checkpoint_segment(outer, x)
        out.sum().backward()
        sig = 1 / (1 + np.exp(-x.data))
        expected = 2.0 * sig * (1 + x.data * (1 - sig))
        np.testing.assert_allclose(x.grad, expected, rtol=1e-10)


class TestMemoryEfficientAttention:
    def test_gradients_match_naive(self, rng):
        x = rng.standard_normal((2, 8, 16))
        grads = {}
        for eff in (False, True):
            attn = SelfAttention(np.random.default_rng(0), 16, 4, 2,
                                 dtype=np.float64, memory_efficient=eff)
            xt = Tensor(x, requires_grad=True)
            attn(xt).sum().backward()
            grads[eff] = (xt.grad.copy(),
                          attn.qkv_proj.weight.grad.copy())
        np.testing.assert_allclose(grads[True][0], grads[False][0],
                                   atol=1e-12)
        np.testing.assert_allclose(grads[True][1], grads[False][1],
                                   atol=1e-12)

    def test_scores_not_retained(self, rng):
        """The s×s probability matrix must not live on the tape."""
        s = 32
        x = rng.standard_normal((1, s, 16))
        sizes = {}
        for eff in (False, True):
            attn = SelfAttention(np.random.default_rng(0), 16, 4, 2,
                                 dtype=np.float64, memory_efficient=eff)
            xt = Tensor(x, requires_grad=True)
            out = attn(xt)
            params = [p.data for p in attn.parameters()]
            sizes[eff] = tape_live_bytes(out, exclude=params)
        assert sizes[True] < 0.5 * sizes[False]


class TestSelectiveRematModel:
    def run_model(self, remat, rng_seed=0):
        rng = np.random.default_rng(rng_seed)
        ids = rng.integers(0, 32, (4, 33))
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64,
                               remat=remat)
        loss = model.language_model_loss(ids, aux_coeff=0.01)
        params = [p.data for p in model.parameters()]
        live = tape_live_bytes(loss, exclude=params)
        loss.backward()
        grads = {n: (p.grad.copy() if p.grad is not None else None)
                 for n, p in model.named_parameters()}
        return loss.item(), live, grads

    def test_loss_identical(self):
        loss_full, _, _ = self.run_model(False)
        loss_remat, _, _ = self.run_model(True)
        assert loss_full == loss_remat

    def test_gradients_identical(self):
        _, _, g_full = self.run_model(False)
        _, _, g_remat = self.run_model(True)
        for name, a in g_full.items():
            b = g_remat[name]
            if a is None:
                assert b is None, name
            else:
                np.testing.assert_allclose(b, a, atol=1e-12,
                                           err_msg=name)

    def test_activation_memory_reduced(self):
        _, live_full, _ = self.run_model(False)
        _, live_remat, _ = self.run_model(True)
        savings = 1 - live_remat / live_full
        # Selective remat (norms + SwiGLU) measurably shrinks the tape;
        # the analytic A.2 accounting covers the paper-scale numbers.
        assert savings > 0.10

    def test_training_step_unchanged(self):
        """A full optimizer step under remat matches no-remat exactly."""
        from repro.precision.optimizer import AdamW, clip_grad_norm
        rng = np.random.default_rng(3)
        ids = rng.integers(0, 32, (4, 33))
        states = {}
        for remat in (False, True):
            model = MoETransformer(CONFIG, seed=0, dtype=np.float64,
                                   remat=remat)
            opt = AdamW(model.parameters(), lr=1e-2)
            model.language_model_loss(ids, aux_coeff=0.01).backward()
            clip_grad_norm(model.parameters(), 1.0)
            opt.step()
            states[remat] = model.state_dict()
        for name in states[False]:
            np.testing.assert_array_equal(states[True][name],
                                          states[False][name])


class TestTapeAccounting:
    def test_exclude_removes_parameters(self, rng):
        w = Tensor(rng.standard_normal((32, 32)), requires_grad=True)
        x = Tensor(rng.standard_normal((4, 32)), requires_grad=True)
        out = x @ w
        with_params = tape_live_bytes(out)
        without = tape_live_bytes(out, exclude=[w.data])
        assert with_params - without == pytest.approx(w.data.nbytes)

    def test_saved_arrays_deduplicated(self, rng):
        x = Tensor(rng.standard_normal((8, 8)), requires_grad=True)
        out = x + x  # the same array referenced twice
        arrays = tape_saved_arrays(out)
        ids = [id(a) for a in arrays]
        assert len(ids) == len(set(ids))
