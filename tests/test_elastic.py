"""Tests for the elastic resharding subsystem (repro.elastic) and the
robustness satellites that ride along with it: layout-stamped
checkpoint meta, LayoutMismatch refusal, seeded backoff jitter, tmp
sweeping on construction, and corrupted-sidecar handling."""

import json
import os

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.runner import FaultInjector, ProductionRunner
from repro.core.trainer import MegaScaleTrainer
from repro.elastic import (
    ElasticRunner,
    ParallelLayout,
    expert_moves,
    expert_placement,
    form_dp_rings,
    reshard_state,
    reshard_zero1_state,
    zero1_moved_elements,
    zero1_shard_flat,
    zero1_unshard_flat,
)
from repro.ft import BackoffPolicy, LayoutMismatch, ResizeEvent
from repro.ft.recovery import (
    META_FORMAT_VERSION,
    meta_path,
    read_checkpoint_meta,
    validate_checkpoint,
    write_checkpoint_meta,
)
from repro.model import MoETransformer
from repro.parallel.zero import Zero1AdamW
from repro.precision.optimizer import AdamW
from repro.tensor import Tensor

CONFIG = ModelConfig("elastic-test", n_layers=2, hidden_size=32,
                     n_heads=8, gqa_ratio=2, ffn_hidden_size=48,
                     n_experts=8, top_k=2, vocab_size=64, seq_len=16)


def layout_at(n):
    return ParallelLayout.from_parallel_config(
        ParallelConfig.megascale(n))


def make_factory(lr=1e-2):
    def factory(layout=None):
        n = 4 if layout is None else layout.world_size
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=16, learning_rate=lr,
                            aux_loss_coeff=0.01)
        return MegaScaleTrainer(
            model, World(n, n), ParallelConfig.megascale(n), train,
            optimizer=AdamW(model.parameters(), lr=lr))
    return factory


def make_batches(n):
    rng = np.random.default_rng(0)
    return [rng.integers(0, 64, size=(2, 17)) for _ in range(n)]


class TestParallelLayout:
    def test_defaults_and_describe(self):
        layout = ParallelLayout(world_size=4, ep=4, sp=4)
        assert (layout.dp, layout.tp, layout.pp) == (1, 1, 1)
        assert layout.describe() == "world=4 dp1 ep4 tp1 sp4 pp1"

    def test_validation(self):
        with pytest.raises(ValueError, match="ep"):
            ParallelLayout(world_size=4, ep=0)
        with pytest.raises(ValueError, match="world_size"):
            ParallelLayout(world_size=1.5)

    def test_dict_round_trip(self):
        layout = ParallelLayout(world_size=8, dp=2, ep=4, sp=4)
        assert ParallelLayout.from_dict(layout.to_dict()) == layout

    def test_from_parallel_config_megascale(self):
        layout = layout_at(4)
        assert layout == ParallelLayout(world_size=4, ep=4, sp=4)

    def test_from_parallel_config_tp(self):
        parallel = ParallelConfig(4, attention="tp", ffn="tp")
        layout = ParallelLayout.from_parallel_config(parallel)
        assert layout.tp == 4 and layout.ep == 1 and layout.sp == 1

    def test_from_trainer_duck_typed(self):
        trainer = make_factory()(layout_at(2))
        assert ParallelLayout.from_trainer(trainer) == layout_at(2)

        class Toy:
            pass

        assert ParallelLayout.from_trainer(Toy()) is None


class TestZero1Reshard:
    def test_shard_unshard_round_trip_with_padding(self):
        flat = np.arange(13, dtype=np.float64)
        for dp in (1, 2, 3, 4, 5):
            shards = zero1_shard_flat(flat, dp)
            assert len(shards) == dp
            assert len({s.size for s in shards}) == 1
            back = zero1_unshard_flat(shards, flat.size)
            np.testing.assert_array_equal(back, flat)

    def test_moved_elements_known_values(self):
        # numel=8: dp2 shards are [0..4), [4..8); dp4 shards are
        # [0..2), [2..4), [4..6), [6..8).  Owners differ on [2..4)
        # (0 -> 1), [4..6) (1 -> 2), and [6..8) (1 -> 3): 6 move.
        assert zero1_moved_elements(8, 2, 4) == 6
        assert zero1_moved_elements(8, 2, 2) == 0
        assert zero1_moved_elements(0, 2, 4) == 0

    def test_moved_elements_symmetric(self):
        for numel in (7, 64, 1000, 84640):
            for a, b in ((1, 4), (2, 4), (3, 5), (4, 6)):
                assert zero1_moved_elements(numel, a, b) == \
                    zero1_moved_elements(numel, b, a)

    def test_moved_elements_matches_brute_force(self):
        def brute(numel, old_dp, new_dp):
            old = zero1_shard_flat(np.arange(numel, dtype=float),
                                   old_dp)
            new = zero1_shard_flat(np.arange(numel, dtype=float),
                                   new_dp)
            def owner(shards, i):
                return next(r for r in range(len(shards))
                            if i in shards[r])

            return sum(1 for i in range(numel)
                       if owner(old, i) != owner(new, i))

        for numel in (5, 8, 13):
            for a, b in ((1, 2), (2, 4), (2, 3), (4, 2)):
                assert zero1_moved_elements(numel, a, b) == \
                    brute(numel, a, b)

    def test_reshard_zero1_state_exact(self):
        rng = np.random.default_rng(3)
        params = [Tensor(rng.normal(size=(5, 3))),
                  Tensor(rng.normal(size=(7,)))]
        opt = Zero1AdamW(params, World(4, 4).full_group(), lr=1e-2)
        for p in params:
            p.grad = rng.normal(size=p.shape)
        opt.step()

        state = opt.shard_state_dict()
        resharded = reshard_zero1_state(state, 2)
        assert resharded["dp"] == 2
        assert resharded["step_count"] == state["step_count"]
        for kind in ("master", "m", "v"):
            np.testing.assert_array_equal(
                zero1_unshard_flat(resharded[kind], state["numel"]),
                zero1_unshard_flat(state[kind], state["numel"]))

    def test_resharded_state_continues_trajectory(self):
        """An optimizer resharded 4 -> 2 steps bit-identically to one
        that ran at 2 the whole time."""
        rng = np.random.default_rng(7)
        shapes = [(6, 4), (10,)]
        grads = [[rng.normal(size=s) for s in shapes]
                 for _ in range(3)]

        def fresh(dp):
            r = np.random.default_rng(1)
            params = [Tensor(r.normal(size=s)) for s in shapes]
            return params, Zero1AdamW(params, World(dp, dp).full_group(),
                                      lr=1e-2)

        ref_params, ref_opt = fresh(2)
        for g in grads:
            for p, gr in zip(ref_params, g):
                p.grad = gr
            ref_opt.step()

        params, opt = fresh(4)
        for g in grads[:2]:
            for p, gr in zip(params, g):
                p.grad = gr
            opt.step()
        moved_params, moved_opt = fresh(2)
        moved_opt.load_shard_state_dict(
            reshard_zero1_state(opt.shard_state_dict(), 2))
        for p, gr in zip(moved_params, grads[2]):
            p.grad = gr
        moved_opt.step()

        for a, b in zip(ref_params, moved_params):
            assert a.data.tobytes() == b.data.tobytes()

    def test_load_shard_state_rejects_wrong_dp(self):
        params = [Tensor(np.zeros(8))]
        opt = Zero1AdamW(params, World(4, 4).full_group())
        state = opt.shard_state_dict()
        other = Zero1AdamW([Tensor(np.zeros(8))], World(2, 2).full_group())
        with pytest.raises(ValueError, match="reshard before loading"):
            other.load_shard_state_dict(state)

    def test_load_shard_state_rejects_wrong_numel(self):
        opt = Zero1AdamW([Tensor(np.zeros(8))], World(2, 2).full_group())
        state = opt.shard_state_dict()
        other = Zero1AdamW([Tensor(np.zeros(12))], World(2, 2).full_group())
        with pytest.raises(ValueError, match="elements"):
            other.load_shard_state_dict(state)


class TestExpertPlacement:
    def test_contiguous_blocks(self):
        assert expert_placement(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]
        assert expert_placement(8, 1) == [0] * 8

    def test_matches_ep_engine_slicing(self):
        """Placement agrees with EPFFNEngine's contiguous slices of
        E/n experts per rank."""
        for n_experts, ep in ((8, 2), (8, 4), (4, 4)):
            local = n_experts // ep
            expected = [e // local for e in range(n_experts)]
            assert expert_placement(n_experts, ep) == expected

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            expert_placement(8, 3)

    def test_expert_moves(self):
        # 8 experts, 4 -> 2 ranks: blocks of 2 become blocks of 4;
        # only experts 0,1 keep their rank (0): the rest move.
        assert expert_moves(8, 4, 2) == [2, 3, 4, 5, 6, 7]
        assert expert_moves(8, 2, 2) == []

    def test_form_dp_rings(self):
        assert form_dp_rings(8, 2) == [[0, 4], [1, 5], [2, 6], [3, 7]]
        assert form_dp_rings(4, 1) == [[0], [1], [2], [3]]
        with pytest.raises(ValueError, match="divisible"):
            form_dp_rings(8, 3)


class TestReshardState:
    def trained_state(self):
        trainer = make_factory()(layout_at(4))
        trainer.train_step(make_batches(1)[0])
        return trainer.state_dict()

    def test_values_bitwise_preserved(self):
        state = self.trained_state()
        new_state, _ = reshard_state(state, layout_at(4), layout_at(2))
        assert sorted(new_state) == sorted(state)
        for key in state:
            assert np.asarray(new_state[key]).tobytes() == \
                np.asarray(state[key]).tobytes(), key

    def test_report_accounting(self):
        state = self.trained_state()
        _, report = reshard_state(state, layout_at(4), layout_at(2))
        numel = sum(np.asarray(v).size for k, v in state.items()
                    if k.startswith("opt/m/"))
        assert report.numel == numel
        assert report.zero_elements_moved == \
            zero1_moved_elements(numel, 4, 2)
        assert report.zero_bytes == 3.0 * 8.0 * report.zero_elements_moved
        # One tuple of moved experts per MoE layer.
        assert len(report.experts_moved) == CONFIG.n_layers
        for layer in report.experts_moved:
            assert layer == tuple(expert_moves(CONFIG.n_experts, 4, 2))
        assert report.expert_bytes > 0
        assert report.total_bytes == \
            report.zero_bytes + report.expert_bytes
        assert report.seconds() == pytest.approx(
            report.total_bytes / 50e9)
        assert report.dp_rings == tuple(
            (r,) for r in range(2))  # world=2, dp=1: singleton rings

    def test_same_layout_moves_nothing(self):
        state = self.trained_state()
        _, report = reshard_state(state, layout_at(4), layout_at(4))
        assert report.zero_elements_moved == 0
        assert report.n_experts_moved == 0
        assert report.total_bytes == 0.0


class TestFaultInjectorResize:
    def test_fires_once_per_step(self):
        injector = FaultInjector(resize_steps={2: layout_at(2)})
        injector.check(0)
        injector.check(1)
        with pytest.raises(ResizeEvent) as exc:
            injector.check(2)
        assert exc.value.step == 2
        assert exc.value.layout == layout_at(2)
        injector.check(2)  # replay proceeds
        assert injector.resized == [2]


class TestElasticRunner:
    def test_shrink_then_grow_matches_fixed_size(self, tmp_path):
        """The acceptance scenario: shrink at N, grow at M, and the
        loss trajectory matches the fixed-size run to fp64 noise."""
        batches = make_batches(8)
        fixed = ProductionRunner(make_factory(),
                                 str(tmp_path / "fixed"),
                                 checkpoint_interval=4)
        fixed_metrics = fixed.run(batches)

        elastic = ElasticRunner(make_factory(), layout_at(4),
                                str(tmp_path / "elastic"),
                                checkpoint_interval=4)
        metrics = elastic.run(
            batches, FaultInjector(resize_steps={3: layout_at(2),
                                                 6: layout_at(4)}))

        assert metrics.resizes == [3, 6]
        assert metrics.replayed_steps == 0
        assert set(metrics.steps) == set(range(8))
        assert len(elastic.reshard_reports) == 2
        assert metrics.reshard_bytes == pytest.approx(sum(
            r.total_bytes for r in elastic.reshard_reports))
        assert metrics.reshard_seconds > 0

        fixed_final = dict(zip(fixed_metrics.steps,
                               fixed_metrics.losses))
        for step, loss in zip(metrics.steps, metrics.losses):
            assert loss == pytest.approx(fixed_final[step],
                                         rel=1e-12), step

    def test_coerce_layout_forms(self, tmp_path):
        runner = ElasticRunner(make_factory(), 4, str(tmp_path))
        assert runner.current_layout == ParallelLayout(
            world_size=4, ep=4, sp=4)
        assert runner._coerce_layout({"world_size": 2, "ep": 2,
                                      "sp": 2}) == \
            ParallelLayout(world_size=2, ep=2, sp=2)

    def test_resize_to_same_size_reshards_nothing(self, tmp_path):
        batches = make_batches(4)
        elastic = ElasticRunner(make_factory(), layout_at(4),
                                str(tmp_path), checkpoint_interval=2)
        metrics = elastic.run(
            batches, FaultInjector(resize_steps={2: layout_at(4)}))
        assert metrics.resizes == [2]
        # Same layout on both sides: the load path sees no mismatch.
        assert elastic.reshard_reports == []
        assert set(metrics.steps) == set(range(4))


class TestLayoutMismatchRefusal:
    def test_fixed_runner_refuses_foreign_layout(self, tmp_path):
        """Satellite (a): the base runner must not silently load a
        checkpoint written under a different parallel layout."""
        factory = make_factory()
        writer = ProductionRunner(lambda: factory(layout_at(4)),
                                  str(tmp_path), checkpoint_interval=2)
        writer.run(make_batches(4))

        reader = ProductionRunner(lambda: factory(layout_at(2)),
                                  str(tmp_path), checkpoint_interval=2)
        with pytest.raises(LayoutMismatch) as exc:
            reader.run(make_batches(4))
        assert exc.value.saved == layout_at(4)
        assert exc.value.current == layout_at(2)
        assert "reshard" in str(exc.value)

    def test_legacy_checkpoint_without_layout_loads(self, tmp_path):
        """v1 sidecars (no layout) opt out of the check."""
        factory = make_factory()
        writer = ProductionRunner(lambda: factory(layout_at(4)),
                                  str(tmp_path), checkpoint_interval=2)
        writer.run(make_batches(4))
        # Strip the layout from the newest sidecar (simulate v1).
        path = writer._path(4)
        meta = read_checkpoint_meta(path)
        del meta["layout"]
        with open(meta_path(path), "w") as handle:
            json.dump(meta, handle)

        reader = ProductionRunner(lambda: factory(layout_at(4)),
                                  str(tmp_path), checkpoint_interval=2)
        metrics = reader.run(make_batches(6))
        assert metrics.steps[0] == 4  # resumed, no refusal


class TestCheckpointMetaLayout:
    def test_meta_records_layout_and_format(self, tmp_path):
        path = str(tmp_path / "step_00000002.npz")
        with open(path, "wb") as handle:
            np.savez(handle, w=np.ones(4))
        meta = write_checkpoint_meta(path, 2, layout=layout_at(4))
        assert meta["format"] == META_FORMAT_VERSION == 2
        assert meta["layout"] == layout_at(4).to_dict()
        assert read_checkpoint_meta(path)["layout"] == \
            layout_at(4).to_dict()

    def test_meta_accepts_plain_dict_layout(self, tmp_path):
        path = str(tmp_path / "step_00000002.npz")
        with open(path, "wb") as handle:
            np.savez(handle, w=np.ones(4))
        meta = write_checkpoint_meta(path, 2,
                                     layout={"world_size": 2})
        assert meta["layout"] == {"world_size": 2}


class TestCorruptedSidecars:
    """Satellite (d): corrupted/truncated meta sidecars."""

    def write_checkpoint(self, tmp_path, step=4):
        path = str(tmp_path / f"step_{step:08d}.npz")
        with open(path, "wb") as handle:
            np.savez(handle, w=np.ones(8))
        write_checkpoint_meta(path, step, layout=layout_at(4))
        return path

    def test_partial_json_reads_as_none(self, tmp_path):
        path = self.write_checkpoint(tmp_path)
        blob = open(meta_path(path)).read()
        with open(meta_path(path), "w") as handle:
            handle.write(blob[:len(blob) // 2])  # truncated write
        assert read_checkpoint_meta(path) is None

    def test_unparseable_sidecar_fails_validation(self, tmp_path):
        """Present-but-broken meta means provenance can't be trusted."""
        path = self.write_checkpoint(tmp_path)
        assert validate_checkpoint(path)
        with open(meta_path(path), "w") as handle:
            handle.write('{"format": 2, "step":')
        assert not validate_checkpoint(path)

    def test_non_dict_sidecar_fails_validation(self, tmp_path):
        path = self.write_checkpoint(tmp_path)
        with open(meta_path(path), "w") as handle:
            json.dump([1, 2, 3], handle)
        assert not validate_checkpoint(path)

    def test_sidecar_pointing_at_missing_archive(self, tmp_path):
        path = self.write_checkpoint(tmp_path)
        os.remove(path)
        assert os.path.exists(meta_path(path))
        assert not validate_checkpoint(path)

    def test_latest_walks_past_broken_meta(self, tmp_path):
        """An intact .npz whose sidecar is garbage is discarded and
        the chain walks back to the previous checkpoint."""
        runner = ProductionRunner(make_factory(), str(tmp_path),
                                  checkpoint_interval=2)
        runner.run(make_batches(4))  # checkpoints at 2 and 4
        with open(meta_path(runner._path(4)), "w") as handle:
            handle.write("not json at all")

        fresh = ProductionRunner(make_factory(), str(tmp_path),
                                 checkpoint_interval=2)
        assert fresh.latest_checkpoint() == 2
        assert fresh.discarded == [4]
        metrics = fresh.run(make_batches(6))
        assert metrics.steps[0] == 2


class TestSweepOnConstruction:
    def test_leftover_tmp_removed_at_startup(self, tmp_path):
        """Satellite (c): construction sweeps crashed-write leftovers
        without waiting for the next save."""
        leftovers = [tmp_path / "step_00000004.npz.tmp",
                     tmp_path / "step_00000004.npz.meta.json.tmp"]
        for p in leftovers:
            p.write_bytes(b"partial")
        ProductionRunner(make_factory(), str(tmp_path))
        for p in leftovers:
            assert not p.exists()

    def test_restore_sweeps_too(self, tmp_path):
        runner = ProductionRunner(make_factory(), str(tmp_path),
                                  checkpoint_interval=2)
        runner.run(make_batches(2))
        leftover = tmp_path / "step_00000009.npz.tmp"
        leftover.write_bytes(b"partial")
        runner._restore(make_factory()())
        assert not leftover.exists()


class TestBackoffJitter:
    """Satellite (b): deterministic seedable jitter."""

    def test_zero_jitter_is_bitwise_legacy(self):
        legacy = BackoffPolicy(max_retries=5, base_delay=0.5,
                               multiplier=2.0, max_delay=3.0)
        assert [legacy.delay(a) for a in range(4)] == \
            [0.5, 1.0, 2.0, 3.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = BackoffPolicy(jitter=0.5, jitter_seed=42)
        for attempt in range(4):
            base = BackoffPolicy().delay(attempt)
            d1 = policy.delay(attempt)
            d2 = policy.delay(attempt)
            assert d1 == d2  # seeded draw, fully reproducible
            assert base * 0.5 <= d1 <= base

    def test_salt_decorrelates_ranks(self):
        policy = BackoffPolicy(jitter=0.5, jitter_seed=1)
        delays = {policy.delay(0, salt=rank) for rank in range(8)}
        assert len(delays) == 8  # no retry stampede in lockstep

    def test_seed_changes_schedule(self):
        a = BackoffPolicy(jitter=0.5, jitter_seed=1)
        b = BackoffPolicy(jitter=0.5, jitter_seed=2)
        assert a.delay(0) != b.delay(0)

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=-0.1)


class TestVerifyCaseResize:
    def test_resize_field_validates(self):
        from repro.verify import VerifyCase

        case = VerifyCase(steps=3, resize=((1, 2), (2, 4)))
        assert case.resize == ((1, 2), (2, 4))
        assert "rz1x2" in case.case_id and "rz2x4" in case.case_id

    def test_resize_rejects_bad_schedules(self):
        from repro.verify import VerifyCase

        with pytest.raises(ValueError, match="outside"):
            VerifyCase(steps=2, resize=((2, 2),))
        with pytest.raises(ValueError, match="strictly increasing"):
            VerifyCase(steps=4, resize=((2, 2), (2, 4)))
        with pytest.raises(ValueError, match="dropout"):
            VerifyCase(steps=3, dropout=0.1, resize=((1, 2),))
        with pytest.raises(ValueError, match="invalid"):
            # 8 heads not divisible by 3 ranks.
            VerifyCase(steps=3, resize=((1, 3),))

    def test_elastic_matrix_covers_grid(self):
        from repro.verify.cases import elastic_matrix

        cases = elastic_matrix()
        assert len(cases) == 12
        assert all(c.resize == ((1, 2), (2, 4)) for c in cases)
        assert {c.execution for c in cases} == {"sequential",
                                                "threaded",
                                                "vectorized"}
        assert {c.precision for c in cases} == {"fp32", "fp8"}
        assert len({c.case_id for c in cases}) == 12

    def test_fuzzer_samples_resize_cases(self):
        from repro.verify.fuzz import sample_case

        rng = np.random.default_rng(0)
        cases = [sample_case(rng) for _ in range(60)]
        resized = [c for c in cases if c.resize]
        assert resized  # the space is actually explored
        for case in resized:
            step, target = case.resize[0]
            assert 1 <= step < case.steps
            assert target != case.ranks

    def test_shrinker_drops_resize_first(self):
        from repro.verify import VerifyCase
        from repro.verify.fuzz import _shrink_candidates

        case = VerifyCase(steps=3, resize=((1, 2),))
        first = next(_shrink_candidates(case))
        assert first.resize == ()

    def test_elastic_resume_invariant_passes(self):
        from repro.verify import VerifyCase, run_case

        case = VerifyCase(layers=1, steps=2, resize=((1, 2),))
        result = run_case(case)
        outcome = result.outcome("elastic_resume")
        assert outcome.status == "pass", outcome.detail

    def test_elastic_resume_skipped_without_resize(self):
        from repro.verify import VerifyCase, run_case

        result = run_case(VerifyCase(layers=1, steps=1))
        assert result.outcome("elastic_resume").status == "skip"


class TestElasticCli:
    def test_elastic_demo_exit_zero(self, capsys, tmp_path):
        from repro.__main__ import main as cli_main

        assert cli_main(["elastic-demo", "4",
                         "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trajectory" in out
        assert "resize" in out

    def test_elastic_demo_rejects_bad_schedule(self, capsys,
                                               tmp_path):
        from repro.__main__ import main as cli_main

        assert cli_main(["elastic-demo", "4", "--shrink-at", "3",
                         "--grow-at", "2",
                         "--dir", str(tmp_path)]) == 2
