"""Cross-module integration tests: the paper's convergence experiments
at miniature scale (Figs. 17–19), plus end-to-end system checks."""

import numpy as np
import pytest

from repro.comm import World
from repro.core import (
    MegaScaleTrainer,
    ModelConfig,
    ParallelConfig,
    TrainConfig,
)
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.parallel.dp import DataParallelTrainer
from repro.precision.optimizer import AdamW
from repro.precision.policy import bf16_policy, fp8_policy


CONFIG = ModelConfig("mini", n_layers=2, hidden_size=32, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=48, n_experts=8,
                     top_k=2, vocab_size=64, seq_len=16)


def loss_curve(policy, steps=8, seed=0, config=CONFIG, lr=3e-3):
    """Train a fresh model for a few steps under a precision policy."""
    model = MoETransformer(config, seed=0, dtype=np.float64)
    world = World(4, 4)
    tr = TrainConfig(global_batch_size=4, micro_batch_size=4,
                     seq_len=config.seq_len, learning_rate=lr,
                     aux_loss_coeff=0.01)
    trainer = MegaScaleTrainer(
        model, world, ParallelConfig.megascale(4), tr,
        optimizer=AdamW(model.parameters(), lr=lr), policy=policy)
    corpus = MarkovCorpus(vocab_size=64, seed=seed)
    return [trainer.train_step(b).lm_loss
            for b in batch_iterator(corpus, 4, 16, seed=seed + 1,
                                    limit=steps)], trainer


class TestFig18FP8Convergence:
    def test_fp8_matches_bf16_loss_curve(self):
        """Fig. 18: FP8 (per-token quantization) and BF16 loss curves
        coincide."""
        bf16_losses, _ = loss_curve(bf16_policy(), steps=12)
        fp8_losses, _ = loss_curve(fp8_policy(), steps=12)
        rel = np.abs(np.array(bf16_losses) - np.array(fp8_losses)) \
            / np.array(bf16_losses)
        # Point-wise within batch noise, and no systematic drift.
        assert rel.max() < 0.05
        assert rel.mean() < 0.02

    def test_both_curves_decrease(self):
        bf16_losses, _ = loss_curve(bf16_policy(), steps=10)
        fp8_losses, _ = loss_curve(fp8_policy(), steps=10)
        assert bf16_losses[-1] < bf16_losses[0]
        assert fp8_losses[-1] < fp8_losses[0]

    def test_continued_training_from_checkpoint(self):
        """Fig. 18's second panel: continue training a checkpoint in
        FP8; the loss picks up where BF16 left off and keeps falling."""
        bf16_losses, trainer = loss_curve(bf16_policy(), steps=6)
        state = trainer.state_dict()

        model = MoETransformer(CONFIG, seed=99, dtype=np.float64)
        world = World(4, 4)
        tr = TrainConfig(global_batch_size=4, micro_batch_size=4,
                         seq_len=16, learning_rate=3e-3,
                         aux_loss_coeff=0.01)
        continued = MegaScaleTrainer(
            model, world, ParallelConfig.megascale(4), tr,
            optimizer=AdamW(model.parameters(), lr=3e-3),
            policy=fp8_policy())
        continued.load_state_dict(state)
        corpus = MarkovCorpus(vocab_size=64, seed=0)
        batches = list(batch_iterator(corpus, 4, 16, seed=7, limit=6))
        resumed = [continued.train_step(b).lm_loss for b in batches]
        assert resumed[0] == pytest.approx(bf16_losses[-1], rel=0.15)
        assert resumed[-1] < resumed[0] * 1.02


class TestFig17DPCompression:
    def test_loss_curves_nearly_identical(self):
        """Fig. 17: BF16-A2A gradient compression tracks the FP32
        reduce-scatter baseline."""
        curves = {}
        corpus = MarkovCorpus(vocab_size=64, seed=4)
        batches = list(batch_iterator(corpus, 2, 16, seed=5, limit=16))
        for method in ("fp32_rs", "bf16_a2a"):
            model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
            trainer = DataParallelTrainer(
                model, World(2, 2).full_group(),
                AdamW(model.parameters(), lr=3e-3),
                lambda m, b: m.language_model_loss(b, aux_coeff=0.01),
                sync_method=method, grad_clip=1.0)
            curve = []
            for i in range(0, len(batches), 2):
                curve.append(trainer.train_step(batches[i:i + 2])
                             .mean_loss)
            curves[method] = np.array(curve)
        rel = np.abs(curves["fp32_rs"] - curves["bf16_a2a"]) \
            / curves["fp32_rs"]
        assert rel.max() < 0.01
        assert curves["bf16_a2a"][-1] < curves["bf16_a2a"][0]


class TestFig19ProductionRun:
    def test_convergence_across_restarts(self):
        """Fig. 19: training restarts from checkpoints leave the loss
        trajectory intact (restart = load + continue)."""
        corpus = MarkovCorpus(vocab_size=64, seed=6)
        batches = list(batch_iterator(corpus, 4, 16, seed=8, limit=12))

        # Uninterrupted run.
        ref_losses, _ = loss_curve(None, steps=0)
        model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        world = World(4, 4)
        tr = TrainConfig(global_batch_size=4, micro_batch_size=4,
                         seq_len=16, learning_rate=3e-3,
                         aux_loss_coeff=0.01)
        straight = MegaScaleTrainer(
            model, world, ParallelConfig.megascale(4), tr,
            optimizer=AdamW(model.parameters(), lr=3e-3))
        straight_losses = [straight.train_step(b).lm_loss
                           for b in batches]

        # Run with two restarts at steps 4 and 8.
        model2 = MoETransformer(CONFIG, seed=0, dtype=np.float64)
        trainer = MegaScaleTrainer(
            model2, world, ParallelConfig.megascale(4), tr,
            optimizer=AdamW(model2.parameters(), lr=3e-3))
        restart_losses = []
        for i, batch in enumerate(batches):
            if i in (4, 8):
                state = trainer.state_dict()
                fresh_model = MoETransformer(CONFIG, seed=123,
                                             dtype=np.float64)
                trainer = MegaScaleTrainer(
                    fresh_model, world, ParallelConfig.megascale(4), tr,
                    optimizer=AdamW(fresh_model.parameters(), lr=3e-3))
                trainer.load_state_dict(state)
            restart_losses.append(trainer.train_step(batch).lm_loss)

        # Restarting loses optimizer state, so allow a small wobble, but
        # the trajectory must stay close and keep converging.
        diff = np.abs(np.array(straight_losses)
                      - np.array(restart_losses))
        assert diff.max() / np.mean(straight_losses) < 0.1
        assert restart_losses[-1] < restart_losses[0]


class TestLedgerEndToEnd:
    def test_megascale_moves_fewer_bytes_than_megatron(self):
        """The whole point of §3: for a GQA model with small top-k, one
        training step under SP+EP moves fewer per-layer bytes than under
        TP+TP."""
        from repro.baselines import MegatronTrainer
        corpus = MarkovCorpus(vocab_size=64, seed=9)
        batch = next(batch_iterator(corpus, 2, 16, seed=10))
        tr = TrainConfig(global_batch_size=2, micro_batch_size=2,
                         seq_len=16, aux_loss_coeff=0.01)

        world_ms = World(4, 4)
        ms = MegaScaleTrainer(
            MoETransformer(CONFIG, seed=0, dtype=np.float64), world_ms,
            ParallelConfig.megascale(4), tr)
        ms.train_step(batch)
        ms_bytes = world_ms.ledger.total_bytes()

        world_mg = World(4, 4)
        mg = MegatronTrainer(
            MoETransformer(CONFIG, seed=0, dtype=np.float64), world_mg,
            tr)
        mg.train_step(batch)
        mg_bytes = world_mg.ledger.total_bytes()
        assert ms_bytes < mg_bytes
