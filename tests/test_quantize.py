"""Tests for the §5 quantization schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.formats import FP8_E4M3, FP8_E5M2
from repro.precision.quantize import (
    dequantize,
    quantize_grouped,
    quantize_per_channel,
    quantize_per_tensor,
    quantize_per_token,
)


def rel_err(x, restored):
    mask = np.abs(x) > 1e-12
    if not mask.any():
        return 0.0
    return float((np.abs(restored - x)[mask] / np.abs(x)[mask]).max())


class TestPerTensor:
    def test_roundtrip_error_bound(self, rng):
        x = rng.standard_normal((32, 16)).astype(np.float64)
        q = quantize_per_tensor(x)
        # Shared scale: error relative to the block max is bounded by
        # half the quantization step.
        err = np.abs(dequantize(q) - x).max()
        assert err <= np.abs(x).max() * 2 ** -4

    def test_scale_maps_max(self, rng):
        x = rng.standard_normal((8, 8))
        q = quantize_per_tensor(x)
        assert np.abs(q.payload).max() <= FP8_E4M3.max_value

    def test_zeros(self):
        q = quantize_per_tensor(np.zeros((4, 4)))
        np.testing.assert_array_equal(dequantize(q), np.zeros((4, 4)))

    def test_wire_bytes(self, rng):
        x = rng.standard_normal((10, 20))
        q = quantize_per_tensor(x)
        assert q.nbytes_on_wire == 200 * 1.0 + 4.0


class TestPerToken:
    def test_outlier_token_isolated(self, rng):
        """A huge-magnitude token must not destroy other tokens'
        precision — the reason per-token beats per-tensor for SwiGLU
        outputs (§7)."""
        x = rng.standard_normal((16, 32))
        x[3] *= 1e4
        per_tensor = rel_err(x[0], dequantize(quantize_per_tensor(x))[0])
        per_token = rel_err(x[0], dequantize(quantize_per_token(x))[0])
        assert per_token < per_tensor
        assert per_token <= 2 ** -3

    def test_scales_shape(self, rng):
        x = rng.standard_normal((16, 32))
        q = quantize_per_token(x)
        assert q.scales.shape == (16, 1)

    def test_3d_input_keeps_shape(self, rng):
        x = rng.standard_normal((2, 8, 16))
        q = quantize_per_token(x)
        assert q.payload.shape == (2, 8, 16)
        assert dequantize(q).shape == (2, 8, 16)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2D"):
            quantize_per_token(np.zeros(8))

    def test_per_row_error_bound(self, rng):
        x = rng.standard_normal((64, 32)) * \
            10.0 ** rng.integers(-3, 4, (64, 1))
        restored = dequantize(quantize_per_token(x))
        for row in range(64):
            err = np.abs(restored[row] - x[row]).max()
            assert err <= np.abs(x[row]).max() * 2 ** -4 + 1e-12


class TestPerChannel:
    def test_outlier_channel_isolated(self, rng):
        x = rng.standard_normal((16, 32))
        x[:, 5] *= 1e4
        restored = dequantize(quantize_per_channel(x))
        assert rel_err(x[:, 0], restored[:, 0]) <= 2 ** -3

    def test_scales_shape(self, rng):
        x = rng.standard_normal((16, 32))
        assert quantize_per_channel(x).scales.shape == (1, 32)


class TestGrouped:
    def test_group_count(self, rng):
        x = rng.standard_normal((300, 8))
        q = quantize_grouped(x, group_size=128)
        assert q.scales.shape == (3, 8)  # ceil(300/128) groups

    def test_exact_multiple(self, rng):
        x = rng.standard_normal((256, 8))
        q = quantize_grouped(x, group_size=128)
        assert q.scales.shape == (2, 8)

    def test_roundtrip_shape(self, rng):
        x = rng.standard_normal((100, 16))
        restored = dequantize(quantize_grouped(x, 32))
        assert restored.shape == (100, 16)

    def test_tighter_than_per_channel_with_drift(self, rng):
        """When gradient magnitude drifts along the token dim (§5's
        motivation for small-group scaling), grouped quantization gives
        lower error than one scale per channel."""
        tokens = np.arange(512)[:, None]
        x = rng.standard_normal((512, 8)) * (1.0 + tokens / 16.0)
        grouped = dequantize(quantize_grouped(x, 64))
        channel = dequantize(quantize_per_channel(x))
        assert (np.abs(grouped - x)[:64].mean()
                < np.abs(channel - x)[:64].mean())

    def test_group_size_one_is_exactish(self, rng):
        x = rng.standard_normal((8, 4))
        q = quantize_grouped(x, group_size=1)
        # Every element gets its own scale per channel-group: the payload
        # maps each value onto the format max, so error is one rounding.
        restored = dequantize(q)
        assert rel_err(x, restored) <= 2 ** -3

    def test_rejects_bad_group(self):
        with pytest.raises(ValueError, match="group_size"):
            quantize_grouped(np.zeros((4, 4)), 0)

    def test_wire_bytes_include_scales(self, rng):
        x = rng.standard_normal((256, 8))
        q = quantize_grouped(x, 128)
        assert q.nbytes_on_wire == 256 * 8 * 1.0 + 2 * 8 * 4.0


class TestFormats:
    def test_e5m2_larger_range_coarser_grid(self, rng):
        x = rng.standard_normal((64, 16))
        e4 = dequantize(quantize_per_token(x, FP8_E4M3))
        e5 = dequantize(quantize_per_token(x, FP8_E5M2))
        # Same dynamic-range handling, but E4M3's extra mantissa bit
        # gives lower error once scales absorb the range.
        assert np.abs(e4 - x).mean() < np.abs(e5 - x).mean()

    @given(st.integers(2, 40), st.integers(2, 16))
    @settings(max_examples=30, deadline=None)
    def test_quantize_never_nan(self, t, h):
        rng = np.random.default_rng(t * 100 + h)
        x = rng.standard_normal((t, h)) * 10.0 ** rng.integers(-20, 20)
        for scheme in (quantize_per_tensor, quantize_per_token,
                       quantize_per_channel):
            restored = dequantize(scheme(x))
            assert np.isfinite(restored).all()


class TestDegenerateInputs:
    """Zero, huge, and non-finite blocks must never poison the scales.

    Regression guards for the ``_scale_for`` clamps: an all-zero token
    once produced a 0 scale (0/0 -> NaN on dequantize) and a token
    above ``float32 max / fmt.max_value`` overflowed the scale to inf.
    """

    SCHEMES = (quantize_per_tensor, quantize_per_token,
               quantize_per_channel)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_zero_input_roundtrips_exactly(self, scheme):
        x = np.zeros((8, 16))
        q = scheme(x)
        assert np.isfinite(q.scales).all() and (q.scales > 0).all()
        np.testing.assert_array_equal(dequantize(q), x)

    def test_zero_token_next_to_normal_token(self, rng):
        x = rng.standard_normal((4, 16))
        x[2] = 0.0
        q = quantize_per_token(x)
        restored = dequantize(q)
        assert np.isfinite(restored).all()
        np.testing.assert_array_equal(restored[2], 0.0)
        assert rel_err(x[:2], restored[:2]) <= FP8_E4M3.epsilon

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_huge_values_roundtrip_finite(self, scheme):
        x = np.full((4, 8), 1e30)  # far above fmt.max, within float32
        restored = dequantize(scheme(x))
        assert np.isfinite(restored).all()
        assert rel_err(x, restored) <= FP8_E4M3.epsilon

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_beyond_float32_saturates_without_nan(self, scheme):
        # 1e305 cannot traverse an 8-bit + f32-scale wire at all; the
        # contract is a clamped finite scale and inf (never NaN) after
        # dequantize, so the finiteness invariant can flag it.
        x = np.full((4, 8), 1e305)
        q = scheme(x)
        assert np.isfinite(q.scales).all()
        with np.errstate(over="ignore"):
            assert not np.isnan(dequantize(q)).any()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_inf_input_keeps_scales_finite(self, scheme):
        x = np.ones((4, 8))
        x[1, 3] = np.inf
        q = scheme(x)
        assert np.isfinite(q.scales).all()
        with np.errstate(over="ignore"):
            assert not np.isnan(dequantize(q)).any()

    def test_grouped_zero_group(self, rng):
        x = rng.standard_normal((8, 16))
        x[0:4] = 0.0
        q = quantize_grouped(x, group_size=4)
        restored = dequantize(q)
        assert np.isfinite(restored).all()
        np.testing.assert_array_equal(restored[0:4], 0.0)
