"""Tests for context-parallel attention (§3.1 'Balanced vs imbalanced')."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import World
from repro.model.layers import SelfAttention
from repro.parallel.cp_attention import (
    CPAttentionEngine,
    cp_attention_comm_volume,
    cp_imbalance,
    cp_layout_positions,
    cp_workload_shares,
)
from repro.tensor import Tensor


class TestLayouts:
    def test_contiguous_partition(self):
        pos = cp_layout_positions(16, 4)
        assert [p.tolist() for p in pos] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]

    def test_zigzag_pairs_head_and_tail(self):
        pos = cp_layout_positions(16, 4, "zigzag")
        assert pos[0].tolist() == [0, 1, 14, 15]
        assert pos[3].tolist() == [6, 7, 8, 9]

    def test_layouts_cover_sequence(self):
        for layout in ("contiguous", "zigzag"):
            pos = cp_layout_positions(32, 4, layout)
            combined = np.sort(np.concatenate(pos))
            np.testing.assert_array_equal(combined, np.arange(32))

    def test_divisibility_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            cp_layout_positions(10, 4)
        with pytest.raises(ValueError, match="2n"):
            cp_layout_positions(12, 4, "zigzag")

    def test_unknown_layout(self):
        with pytest.raises(ValueError, match="unknown CP layout"):
            cp_layout_positions(16, 4, "spiral")


class TestWorkloadAnalysis:
    def test_contiguous_tail_heaviest(self):
        shares = cp_workload_shares(64, 4)
        assert (np.diff(shares) > 0).all()
        assert shares[-1] > 3 * shares[0]

    def test_contiguous_imbalance_approaches_two(self):
        """The last rank does ~2x the mean work as n grows — the §3.1
        complaint about CP under causal masking."""
        # Last rank's share → (2n-1)/n of the mean: 1.5 at n=2,
        # 1.875 at n=8, approaching 2.
        assert cp_imbalance(1024, 2) == pytest.approx(1.5, rel=0.01)
        assert cp_imbalance(8192, 8) == pytest.approx(1.875, rel=0.01)

    def test_zigzag_balances(self):
        """Zigzag equalizes the quadratic term exactly in this model
        (the paper: 'perfect balance remains challenging' — real kernels
        add block-granularity effects)."""
        shares = cp_workload_shares(64, 4, "zigzag")
        np.testing.assert_allclose(shares, 0.25, rtol=1e-12)
        assert cp_imbalance(8192, 8, "zigzag") == pytest.approx(1.0)

    @given(st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_zigzag_never_worse(self, n):
        s = 16 * n
        assert cp_imbalance(s, n, "zigzag") <= \
            cp_imbalance(s, n, "contiguous") + 1e-9

    def test_comm_volume_gqa_reduction(self):
        """CP circulates only K/V, so GQA divides the volume by m."""
        assert cp_attention_comm_volume(1, 64, 128, 8, 4) == \
            pytest.approx(cp_attention_comm_volume(1, 64, 128, 8, 1) / 4)

    def test_comm_volume_single_rank(self):
        assert cp_attention_comm_volume(1, 64, 128, 1, 4) == 0.0


class TestCPEngine:
    @pytest.mark.parametrize("layout", ["contiguous", "zigzag"])
    @pytest.mark.parametrize("b,s,h,nh,m,n", [
        (2, 16, 16, 4, 2, 4),
        (1, 16, 32, 8, 4, 2),
        (1, 32, 16, 8, 1, 8),
    ])
    def test_matches_reference(self, layout, b, s, h, nh, m, n):
        rng = np.random.default_rng(b * 10 + s + n)
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        x = rng.standard_normal((b, s, h))
        xt = Tensor(x, requires_grad=True)
        ref = attn(xt)
        g = rng.standard_normal(ref.shape)
        ref.backward(g)
        ref_out = ref.data.copy()
        ref_dx = xt.grad.copy()
        ref_qkv = attn.qkv_proj.weight.grad.copy()
        attn.zero_grad()

        world = World(n, n)
        engine = CPAttentionEngine(world.full_group(), attn, layout)
        positions = cp_layout_positions(s, n, layout)
        shards = [Tensor(x[:, p].copy(), requires_grad=True)
                  for p in positions]
        outs = engine.forward(shards, s)
        for out, pos in zip(outs, positions):
            np.testing.assert_allclose(out.data, ref_out[:, pos],
                                       atol=1e-10)

        scalar = None
        for out, pos in zip(outs, positions):
            piece = (out * Tensor(g[:, pos])).sum()
            scalar = piece if scalar is None else scalar + piece
        scalar.backward()
        dx = np.zeros_like(x)
        for shard, pos in zip(shards, positions):
            dx[:, pos] = shard.grad
        np.testing.assert_allclose(dx, ref_dx, atol=1e-10)
        np.testing.assert_allclose(attn.qkv_proj.weight.grad, ref_qkv,
                                   atol=1e-10)
        attn.zero_grad()

    def test_comm_volume_matches_formula(self, rng):
        b, s, h, nh, m, n = 2, 16, 16, 4, 2, 4
        attn = SelfAttention(rng, h, nh, m, dtype=np.float64)
        world = World(n, n)
        engine = CPAttentionEngine(world.full_group(), attn)
        positions = cp_layout_positions(s, n)
        x = rng.standard_normal((b, s, h))
        world.ledger.clear()
        engine.forward([Tensor(x[:, p].copy()) for p in positions], s)
        measured = sum(
            r.total_bytes for r in world.ledger.records
            if r.tag == "cp_attn:kv_ring") / 8.0
        assert measured == pytest.approx(
            cp_attention_comm_volume(b, s, h, n, m) * n)

    def test_wrong_shard_width(self, rng):
        attn = SelfAttention(rng, 16, 4, 2, dtype=np.float64)
        world = World(4, 4)
        engine = CPAttentionEngine(world.full_group(), attn)
        shards = [Tensor(rng.standard_normal((1, 3, 16)))
                  for _ in range(4)]
        with pytest.raises(ValueError, match="layout expects"):
            engine.forward(shards, 16)

    def test_invalid_layout_rejected(self, rng):
        attn = SelfAttention(rng, 16, 4, 2)
        world = World(4, 4)
        with pytest.raises(ValueError, match="unknown CP layout"):
            CPAttentionEngine(world.full_group(), attn, "diagonal")
