"""Tests for the full MoE transformer and its training behaviour."""

import numpy as np
import pytest

from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.tensor import no_grad


class TestForward:
    def test_logits_shape(self, rng, tiny_config):
        model = MoETransformer(tiny_config, seed=0)
        ids = rng.integers(0, 64, (2, 8))
        fwd = model(ids)
        assert fwd.logits.shape == (2, 8, 64)
        assert len(fwd.moe_outputs) == 2

    def test_rejects_non_2d(self, tiny_config):
        model = MoETransformer(tiny_config, seed=0)
        with pytest.raises(ValueError, match="batch, seq"):
            model(np.zeros(5, dtype=int))

    def test_aux_loss_accumulates_layers(self, rng, tiny_config):
        model = MoETransformer(tiny_config, seed=0, dtype=np.float64)
        ids = rng.integers(0, 64, (1, 8))
        fwd = model(ids)
        total = sum(m.aux_loss.item() for m in fwd.moe_outputs)
        assert fwd.aux_loss.item() == pytest.approx(total)

    def test_param_count_close_to_config(self, tiny_config):
        model = MoETransformer(tiny_config, seed=0)
        # Config excludes the final-norm weight only.
        assert model.n_params() == \
            tiny_config.total_params + tiny_config.hidden_size

    def test_deterministic_by_seed(self, rng, tiny_config):
        a = MoETransformer(tiny_config, seed=7)
        b = MoETransformer(tiny_config, seed=7)
        ids = rng.integers(0, 64, (2, 8))
        np.testing.assert_array_equal(a(ids).logits.data,
                                      b(ids).logits.data)

    def test_different_seeds_differ(self, rng, tiny_config):
        a = MoETransformer(tiny_config, seed=1)
        b = MoETransformer(tiny_config, seed=2)
        ids = rng.integers(0, 64, (1, 4))
        assert np.abs(a(ids).logits.data - b(ids).logits.data).max() > 1e-3


class TestTraining:
    def test_loss_decreases(self, tiny_config):
        model = MoETransformer(tiny_config, seed=0, dtype=np.float64)
        corpus = MarkovCorpus(vocab_size=64, seed=3)
        batches = list(batch_iterator(corpus, 4, 16, limit=12))
        first = model.language_model_loss(batches[0]).item()
        for batch in batches:
            model.zero_grad()
            loss = model.language_model_loss(batch, aux_coeff=0.01)
            loss.backward()
            for p in model.parameters():
                if p.grad is not None:
                    p.data = p.data - 0.3 * p.grad
        last = model.language_model_loss(batches[0]).item()
        assert last < first * 0.8

    def test_initial_loss_near_uniform(self, tiny_config):
        model = MoETransformer(tiny_config, seed=0)
        corpus = MarkovCorpus(vocab_size=64, seed=3)
        batch = next(batch_iterator(corpus, 4, 16))
        loss = model.language_model_loss(batch).item()
        assert loss == pytest.approx(np.log(64), rel=0.2)

    def test_all_params_receive_grads(self, rng, tiny_config):
        model = MoETransformer(tiny_config, seed=0, dtype=np.float64)
        # Large batch so every expert gets traffic.
        ids = rng.integers(0, 64, (8, 17))
        model.language_model_loss(ids, aux_coeff=0.01).backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        assert not missing, f"params without grads: {missing[:5]}"

    def test_checkpoint_roundtrip(self, rng, tiny_config):
        a = MoETransformer(tiny_config, seed=0)
        b = MoETransformer(tiny_config, seed=42)
        b.load_state_dict(a.state_dict())
        ids = rng.integers(0, 64, (2, 9))
        with no_grad():
            np.testing.assert_array_equal(a(ids).logits.data,
                                          b(ids).logits.data)


class TestCorpus:
    def test_deterministic(self):
        a = MarkovCorpus(vocab_size=32, seed=5)
        b = MarkovCorpus(vocab_size=32, seed=5)
        np.testing.assert_array_equal(a.transition, b.transition)

    def test_transition_is_stochastic(self):
        c = MarkovCorpus(vocab_size=16, seed=1)
        np.testing.assert_allclose(c.transition.sum(axis=1), 1.0,
                                   rtol=1e-10)

    def test_entropy_below_uniform(self):
        c = MarkovCorpus(vocab_size=64, branching=4, temperature=0.1)
        assert c.conditional_entropy() < np.log(64) * 0.6

    def test_lower_branching_lower_entropy(self):
        easy = MarkovCorpus(vocab_size=64, branching=2, seed=0)
        hard = MarkovCorpus(vocab_size=64, branching=32, seed=0)
        assert easy.conditional_entropy() < hard.conditional_entropy()

    def test_sample_range(self, rng):
        c = MarkovCorpus(vocab_size=16, seed=2)
        tokens = c.sample(rng, 4, 100)
        assert tokens.min() >= 0 and tokens.max() < 16

    def test_batch_iterator_shapes(self):
        c = MarkovCorpus(vocab_size=16, seed=2)
        batches = list(batch_iterator(c, 3, 10, limit=4))
        assert len(batches) == 4
        assert all(b.shape == (3, 11) for b in batches)

    def test_branching_validation(self):
        with pytest.raises(ValueError, match="branching"):
            MarkovCorpus(vocab_size=4, branching=8)

    def test_samples_follow_transition(self, rng):
        """Empirical next-token frequencies approximate the matrix."""
        c = MarkovCorpus(vocab_size=8, branching=2, temperature=0.05,
                         seed=0)
        tokens = c.sample(rng, 1, 20000)[0]
        # For the most common state, check its empirical successors.
        state = np.bincount(tokens).argmax()
        mask = tokens[:-1] == state
        successors = tokens[1:][mask]
        emp = np.bincount(successors, minlength=8) / mask.sum()
        np.testing.assert_allclose(emp, c.transition[state], atol=0.05)
