"""Tests for the packaged Megatron-LM baseline characterization."""

import numpy as np

from repro.baselines import (
    MegatronTrainer,
    megatron_parallel_config,
    megatron_perf_model,
)
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig


class TestMegatronConfig:
    def test_tp_everywhere(self):
        pc = megatron_parallel_config(8, 15, 12)
        assert pc.attention == "tp" and pc.ffn == "tp"
        assert pc.strategy_name == "TP+TP"
        assert pc.total_gpus == 1440

    def test_kwargs_forwarded(self):
        pc = megatron_parallel_config(8, zero_stage=0)
        assert pc.zero_stage == 0


class TestMegatronPerfModel:
    def test_baseline_characterization(self):
        system = megatron_perf_model()
        assert system.name == "megatron-lm"
        assert not system.overlap.inter_op
        assert not system.overlap.intra_op
        assert system.grad_elem_bytes == 4.0   # FP32 DP gradients
        assert system.full_recompute
        assert system.mem_eff < 0.6            # torch.scatter_add

    def test_overrides(self):
        system = megatron_perf_model(full_recompute=False)
        assert not system.full_recompute

    def test_slower_than_megascale_on_paper_setup(self):
        from repro.perf import MegaScalePerfModel
        model = MODEL_ZOO["internal-352b"]
        gpu = GPU_SPECS["h800"]
        train = TrainConfig(global_batch_size=720)
        mg = megatron_perf_model().iteration(
            model, megatron_parallel_config(8, 15, 4), train, gpu)
        ms = MegaScalePerfModel().iteration(
            model, ParallelConfig.megascale(8, 15, 4), train, gpu)
        assert mg.iteration_time > 1.5 * ms.iteration_time


class TestMegatronTrainerWiring:
    def test_adopts_world_size_and_tp(self):
        from repro.comm import World
        from repro.core.config import ModelConfig
        from repro.model import MoETransformer
        cfg = ModelConfig("mb", 1, 16, 4, 2, 24, 4, 2, vocab_size=32,
                          seq_len=8)
        model = MoETransformer(cfg, seed=0, dtype=np.float64)
        trainer = MegatronTrainer(
            model, World(2, 2),
            TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=8))
        assert trainer.parallel.strategy_name == "TP+TP"
        assert trainer.parallel.model_parallel_size == 2

    def test_trains(self, rng):
        from repro.comm import World
        from repro.core.config import ModelConfig
        from repro.model import MoETransformer
        from repro.precision.optimizer import AdamW
        cfg = ModelConfig("mb2", 1, 16, 4, 2, 24, 4, 2, vocab_size=32,
                          seq_len=8)
        model = MoETransformer(cfg, seed=0, dtype=np.float64)
        trainer = MegatronTrainer(
            model, World(2, 2),
            TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=8, aux_loss_coeff=0.01),
            optimizer=AdamW(model.parameters(), lr=1e-2))
        batch = rng.integers(0, 32, (2, 9))
        first = trainer.train_step(batch).loss
        for _ in range(3):
            last = trainer.train_step(batch).loss
        assert last < first
