"""Tests for the tape-based autograd engine."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled

from conftest import gradcheck


class TestConstruction:
    def test_dtype_coercion(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_from_tensor(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_array_equal(a.data, b.data)

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0

    def test_repr(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True, name="w")
        assert "w" in repr(t) and "requires_grad" in repr(t)

    def test_detach_and_item(self):
        t = Tensor([5.0], requires_grad=True)
        assert not t.detach().requires_grad
        assert Tensor(3.0).item() == 3.0


class TestBackwardMechanics:
    def test_scalar_backward_default_grad(self):
        t = Tensor([2.0, 3.0], requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0, 6.0])

    def test_nonscalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (t * 2).backward()

    def test_backward_on_leaf_raises(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError, match="non-grad"):
            t.backward()

    def test_grad_accumulates_over_reuse(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t + t).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])

    def test_diamond_graph(self):
        t = Tensor([3.0], requires_grad=True)
        a = t * 2
        b = t * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_deep_chain_no_recursion_error(self):
        t = Tensor([1.0], requires_grad=True)
        x = t
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_no_grad_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2
        assert is_grad_enabled()
        assert out.node is None and not out.requires_grad

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestBroadcasting:
    def test_add_broadcast_grad(self, rng):
        gradcheck(lambda a, b: (a + b).sum(),
                  [rng.standard_normal((3, 4)), rng.standard_normal(4)],
                  rng)

    def test_mul_scalar_broadcast(self, rng):
        gradcheck(lambda a, b: a * b,
                  [rng.standard_normal((2, 3)),
                   rng.standard_normal((1, 3))], rng)

    def test_div_broadcast(self, rng):
        gradcheck(lambda a, b: a / b,
                  [rng.standard_normal((3, 2)),
                   rng.standard_normal((3, 1)) + 3.0], rng)


class TestArithmeticGradients:
    def test_sub(self, rng):
        gradcheck(lambda a, b: a - b,
                  [rng.standard_normal((3,)), rng.standard_normal((3,))],
                  rng)

    def test_rsub_rdiv(self):
        t = Tensor([2.0], requires_grad=True)
        (5.0 - t).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0])
        t2 = Tensor([2.0], requires_grad=True)
        (4.0 / t2).sum().backward()
        np.testing.assert_allclose(t2.grad, [-1.0])

    def test_neg_pow(self, rng):
        gradcheck(lambda a: (-a) ** 3.0,
                  [rng.standard_normal((4,)) + 2.0], rng)

    def test_matmul_2d(self, rng):
        gradcheck(lambda a, b: a @ b,
                  [rng.standard_normal((3, 4)),
                   rng.standard_normal((4, 2))], rng)

    def test_matmul_batched(self, rng):
        gradcheck(lambda a, b: a @ b,
                  [rng.standard_normal((2, 3, 4)),
                   rng.standard_normal((2, 4, 5))], rng)

    def test_matmul_vector(self, rng):
        gradcheck(lambda a, b: a @ b,
                  [rng.standard_normal((3, 4)),
                   rng.standard_normal((4,))], rng)


class TestReductionsAndShaping:
    def test_sum_axis_keepdims(self, rng):
        gradcheck(lambda a: a.sum(axis=1, keepdims=True),
                  [rng.standard_normal((3, 4))], rng)

    def test_sum_multi_axis(self, rng):
        gradcheck(lambda a: a.sum(axis=(0, 2)),
                  [rng.standard_normal((2, 3, 4))], rng)

    def test_mean(self, rng):
        gradcheck(lambda a: a.mean(axis=0),
                  [rng.standard_normal((5, 2))], rng)

    def test_reshape(self, rng):
        gradcheck(lambda a: a.reshape(6, 2) @ Tensor(np.eye(2)),
                  [rng.standard_normal((3, 4))], rng)

    def test_transpose(self, rng):
        gradcheck(lambda a: a.transpose(1, 0, 2).sum(axis=0),
                  [rng.standard_normal((2, 3, 4))], rng)

    def test_swapaxes(self, rng):
        gradcheck(lambda a: a.swapaxes(0, 1).sum(axis=1),
                  [rng.standard_normal((3, 4))], rng)

    def test_getitem_slice(self, rng):
        gradcheck(lambda a: a[1:3], [rng.standard_normal((5, 2))], rng)

    def test_getitem_fancy_repeated(self, rng):
        idx = np.array([0, 2, 2, 1])
        gradcheck(lambda a: a[idx], [rng.standard_normal((4, 3))], rng)


class TestNonlinearities:
    def test_exp_log_sqrt(self, rng):
        x = np.abs(rng.standard_normal((4,))) + 0.5
        gradcheck(lambda a: a.exp(), [x], rng)
        gradcheck(lambda a: a.log(), [x], rng)
        gradcheck(lambda a: a.sqrt(), [x], rng)

    def test_tanh_sigmoid(self, rng):
        x = rng.standard_normal((5,))
        gradcheck(lambda a: a.tanh(), [x], rng)
        gradcheck(lambda a: a.sigmoid(), [x], rng)

    def test_relu(self, rng):
        x = rng.standard_normal((20,)) + 0.05  # avoid the kink
        gradcheck(lambda a: a.relu(), [x], rng)

    def test_silu(self, rng):
        gradcheck(lambda a: a.silu(), [rng.standard_normal((6,))], rng)

    def test_silu_matches_x_sigmoid(self, rng):
        x = Tensor(rng.standard_normal((10,)))
        np.testing.assert_allclose(x.silu().data,
                                   (x * x.sigmoid()).data, rtol=1e-6)
