"""Tests for the closed-form analysis (Eqs. 1–9, Appendix A.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    activation_budget,
    activation_elements_full,
    activation_elements_remat,
    attention_comm_volume,
    ep_ffn_comm_volume,
    ffn_comm_volume,
    param_memory_per_gpu,
    scale_up_ratio,
    sp_attention_comm_volume,
    tp_attention_comm_volume,
    tp_ffn_comm_volume,
)
from repro.core.config import GPU_SPECS, MODEL_ZOO, \
    ParallelConfig


class TestCommVolumeFormulas:
    def test_eq1_literal(self):
        assert tp_attention_comm_volume(2, 8192, 4096, 8) == \
            pytest.approx(2 * 2 * 8192 * 4096 * 7 / 8)

    def test_eq2_literal(self):
        b, s, h, n, m = 2, 8192, 4096, 8, 4
        expected = 2 * b * s * h * (n - 1) / n * (2 + 2 / m) / n
        assert sp_attention_comm_volume(b, s, h, n, m) == \
            pytest.approx(expected)

    def test_eq3_literal(self):
        b, s, h, n, k = 1, 8192, 4096, 8, 3
        assert ep_ffn_comm_volume(b, s, h, n, k) == \
            pytest.approx(2 * k / n * b * s * h * (n - 1) / n)

    def test_eq4_equals_eq1(self):
        assert tp_ffn_comm_volume(3, 64, 128, 8) == \
            tp_attention_comm_volume(3, 64, 128, 8)

    def test_degenerate_single_rank(self):
        assert tp_attention_comm_volume(1, 8, 16, 1) == 0.0
        assert sp_attention_comm_volume(1, 8, 16, 1, 4) == 0.0
        assert ep_ffn_comm_volume(1, 8, 16, 1, 2) == 0.0

    def test_paper_quarter_claim(self):
        """§3.1: with n=8 and GQA, SP attention communication drops to
        about one-fourth of TP's."""
        b, s, h = 1, 8192, 4096
        ratio = sp_attention_comm_volume(b, s, h, 8, 4) / \
            tp_attention_comm_volume(b, s, h, 8)
        assert ratio == pytest.approx((2 + 0.5) / 8)
        assert 0.2 < ratio < 0.35

    @given(st.integers(2, 64), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_sp_beats_tp_beyond_threshold(self, n, m):
        """SP volume < TP volume iff (2 + 2/m)/n < 1."""
        sp = sp_attention_comm_volume(1, 64, 128, n, m)
        tp = tp_attention_comm_volume(1, 64, 128, n)
        if (2 + 2 / m) / n < 1:
            assert sp < tp
        else:
            assert sp >= tp

    @given(st.integers(2, 64), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_ep_vs_tp_crossover_at_k_equals_n(self, n, k):
        """Eq. 3 vs Eq. 4: A2A volume beats TP exactly when k < n."""
        ep = ep_ffn_comm_volume(1, 64, 128, n, k)
        tp = tp_ffn_comm_volume(1, 64, 128, n)
        if k < n:
            assert ep < tp
        elif k > n:
            assert ep > tp

    def test_strategy_dispatchers(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        sp = ParallelConfig.megascale(8)
        tp = ParallelConfig.megatron(8)
        assert attention_comm_volume(model, sp, 1) < \
            attention_comm_volume(model, tp, 1)
        assert ffn_comm_volume(model, sp, 1) <= \
            ffn_comm_volume(model, tp, 1)

    def test_adaptive_ffn_capped_at_tp(self):
        """With the adaptive dispatch, EP volume never exceeds Eq. 4
        (§3.2's guarantee)."""
        model = MODEL_ZOO["deepseekmoe"]  # top-6
        for n in (2, 4, 8):
            pc = ParallelConfig.megascale(n)
            assert ffn_comm_volume(model, pc, 1) <= \
                tp_ffn_comm_volume(1, model.seq_len, model.hidden_size,
                                   n) + 1e-9


class TestScaleUpRatio:
    def test_formula(self):
        r = scale_up_ratio(14336, 400e9, 989e12, 8)
        assert r == pytest.approx(1.5 * 14336 * 400e9 / 989e12 * 8 / 7)

    def test_independent_of_model_scale_knobs(self):
        """§7: R does not depend on experts, top-k, hidden size, batch —
        only h_ffn and the hardware ratio (and weakly n)."""
        base = scale_up_ratio(14336, 400e9, 989e12, 8)
        also = scale_up_ratio(14336, 400e9, 989e12, 8)
        assert base == also  # no other inputs exist to vary

    def test_n_dependence_vanishes(self):
        r8 = scale_up_ratio(14336, 400e9, 989e12, 8)
        r64 = scale_up_ratio(14336, 400e9, 989e12, 64)
        assert abs(r8 - r64) / r8 < 0.15

    def test_h800_ffn_sizes_sustain_overlap(self):
        """For the paper's models on H800 NVLink, R > 1 comfortably."""
        gpu = GPU_SPECS["h800"]
        for name in ("internal-352b", "mixtral-8x7b", "mixtral-8x22b"):
            model = MODEL_ZOO[name]
            r = scale_up_ratio(model.ffn_hidden_size,
                               gpu.nvlink_bandwidth, gpu.peak_flops)
            assert r > 1.0, name

    def test_rdma_needs_bigger_experts(self):
        """Crossing the NVLink domain (50 GB/s RDMA) shrinks R by the
        bandwidth ratio — the §7 'scale up' question."""
        nvlink = scale_up_ratio(14336, 400e9, 989e12)
        rdma = scale_up_ratio(14336, 50e9, 989e12)
        assert rdma == pytest.approx(nvlink / 8)
        # An expert dimension 8× larger restores R.
        assert scale_up_ratio(14336 * 8, 50e9, 989e12) == \
            pytest.approx(nvlink)

    def test_single_rank_infinite(self):
        assert scale_up_ratio(1024, 1e9, 1e12, 1) == float("inf")


class TestActivationMemory:
    @given(st.integers(2, 16), st.sampled_from([1, 2, 4, 8]),
           st.integers(1, 8), st.floats(0.5, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_remat_always_smaller(self, n, m, k, f):
        full = activation_elements_full(1, 64, 32, n, m, k, f)
        remat = activation_elements_remat(1, 64, 32, n, m, k, f)
        assert remat < full

    def test_full_formula_literal(self):
        b, s, h, n, m, k, f = 1, 8192, 4096, 8, 4, 3, 3.5
        expected = (2 * n + 2 * k + 3 * k * f + 12 + 5 / m) * b * s * h / n
        assert activation_elements_full(b, s, h, n, m, k, f) == \
            pytest.approx(expected)

    def test_remat_formula_literal(self):
        b, s, h, n, m, k, f = 1, 8192, 4096, 8, 4, 3, 3.5
        expected = (2 * k * f + 4 + 2 / m) * b * s * h / n
        assert activation_elements_remat(b, s, h, n, m, k, f) == \
            pytest.approx(expected)

    def test_paper_headline_50_percent(self):
        """§4.1: ~50% activation memory reduction on the paper's
        models."""
        for name in ("mixtral-8x7b", "mixtral-8x2b", "internal-352b"):
            model = MODEL_ZOO[name]
            budget = activation_budget(model, ParallelConfig.megascale(8),
                                       micro_batch=1)
            assert 0.35 < budget.savings_fraction < 0.75, name

    def test_budget_matches_formulas(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        pc = ParallelConfig.megascale(8)
        budget = activation_budget(model, pc, 2)
        f = model.ffn_hidden_size / model.hidden_size
        assert budget.full_elements == pytest.approx(
            activation_elements_full(2, model.seq_len, model.hidden_size,
                                     8, model.gqa_ratio, model.top_k, f))


class TestParamMemory:
    def test_sp_replicates_attention(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        sp = param_memory_per_gpu(model, ParallelConfig.megascale(8))
        tp = param_memory_per_gpu(model, ParallelConfig.megatron(8))
        assert sp["params"] > tp["params"]
        # But the overhead is small because experts dominate (§3.1):
        # the paper reports single-digit-percent extra memory.
        assert sp["params"] / tp["params"] < 1.3

    def test_sp_overhead_band_all_models(self):
        """Fig. 13 discussion: SP's extra parameter/gradient/optimizer
        memory stays small across the model zoo (paper: 1.7%–8.1%; our
        accounting stays under 20% for every configuration)."""
        for name, model in MODEL_ZOO.items():
            sp = param_memory_per_gpu(
                model, ParallelConfig.megascale(8, data_parallel_size=4))
            tp = param_memory_per_gpu(
                model, ParallelConfig.megatron(8, data_parallel_size=4))
            overhead = sp["total"] / tp["total"] - 1
            assert 0.0 < overhead < 0.20, (name, overhead)

    def test_sp_overhead_shrinks_with_expert_count(self):
        """The more parameters live in the (sharded) experts, the
        cheaper SP's attention replication — why MoE makes the SP
        trade-off acceptable (§3.1)."""
        many = MODEL_ZOO["internal-352b"]   # 32 experts, h_ffn 14336
        few = MODEL_ZOO["mixtral-8x7b"]     # 8 experts, same h/h_ffn
        def overhead(model):
            sp = param_memory_per_gpu(model, ParallelConfig.megascale(8))
            tp = param_memory_per_gpu(model, ParallelConfig.megatron(8))
            return sp["total"] / tp["total"] - 1
        assert overhead(many) < overhead(few)

    def test_zero_shards_optimizer(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        pc1 = ParallelConfig.megascale(8, data_parallel_size=1)
        pc8 = ParallelConfig.megascale(8, data_parallel_size=8)
        m1 = param_memory_per_gpu(model, pc1)
        m8 = param_memory_per_gpu(model, pc8)
        assert m8["optimizer"] == pytest.approx(m1["optimizer"] / 8)
        assert m8["params"] == m1["params"]

    def test_pipeline_divides_layers(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        p1 = param_memory_per_gpu(model, ParallelConfig.megascale(8, 1))
        p4 = param_memory_per_gpu(model, ParallelConfig.megascale(8, 4))
        assert p4["params"] < p1["params"] / 3
