"""Property-based fuzzing of the autograd engine: random expression
trees must pass central-difference gradient checks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, ops

from conftest import gradcheck

UNARY = ["silu", "tanh", "sigmoid", "exp_shrunk", "softmax", "sum_keep",
         "mean0", "transpose", "reshape", "neg"]
BINARY = ["add", "mul", "sub", "div_safe", "matmul_square"]


def apply_unary(name, t):
    if name == "silu":
        return t.silu()
    if name == "tanh":
        return t.tanh()
    if name == "sigmoid":
        return t.sigmoid()
    if name == "exp_shrunk":
        return (t * 0.3).exp()
    if name == "softmax":
        return ops.softmax(t, axis=-1)
    if name == "sum_keep":
        return t.sum(axis=-1, keepdims=True) + t * 0.0
    if name == "mean0":
        return t.mean(axis=0, keepdims=True) + t * 0.0
    if name == "transpose":
        return t.swapaxes(0, 1).swapaxes(0, 1)
    if name == "reshape":
        return t.reshape(t.size).reshape(*t.shape)
    if name == "neg":
        return -t
    raise AssertionError(name)


def apply_binary(name, a, b):
    if name == "add":
        return a + b
    if name == "mul":
        return a * b
    if name == "sub":
        return a - b
    if name == "div_safe":
        return a / (b * b + 1.0)
    if name == "matmul_square":
        return a @ b.swapaxes(0, 1) @ b
    raise AssertionError(name)


@st.composite
def expression(draw):
    """A random expression over two [r, c] inputs, depth <= 4."""
    unary_ops = draw(st.lists(st.sampled_from(UNARY), min_size=0,
                              max_size=3))
    binary = draw(st.sampled_from(BINARY))
    more_unary = draw(st.lists(st.sampled_from(UNARY), min_size=0,
                               max_size=2))
    rows = draw(st.integers(2, 4))
    cols = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10 ** 6))
    return unary_ops, binary, more_unary, rows, cols, seed


class TestAutogradFuzz:
    @given(expression())
    @settings(max_examples=40, deadline=None)
    def test_random_expressions_gradcheck(self, expr):
        unary_ops, binary, more_unary, rows, cols, seed = expr
        rng = np.random.default_rng(seed)

        def fn(a, b):
            x = a
            for name in unary_ops:
                x = apply_unary(name, x)
            y = apply_binary(binary, x, b)
            for name in more_unary:
                y = apply_unary(name, y)
            return y

        a = rng.standard_normal((rows, cols)) * 0.5
        b = rng.standard_normal((rows, cols)) * 0.5
        gradcheck(fn, [a, b], rng, eps=1e-6, tol=5e-4)

    @given(st.integers(0, 10 ** 6), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_second_use_accumulates(self, seed, n):
        """Using a tensor n times scales its gradient n-fold."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        total = None
        for _ in range(n):
            term = (x * 2.0).sum()
            total = term if total is None else total + term
        total.backward()
        np.testing.assert_allclose(x.grad, 2.0 * n, rtol=1e-12)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_checkpoint_matches_plain_on_random_exprs(self, seed):
        from repro.tensor.checkpoint import checkpoint_segment
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((3, 4))

        def fn(t):
            return ops.softmax(t.silu() * 1.5, axis=-1).sum(axis=0)

        plain = Tensor(a, requires_grad=True)
        fn(plain).sum().backward()

        ckpt = Tensor(a, requires_grad=True)
        checkpoint_segment(fn, ckpt).sum().backward()
        np.testing.assert_allclose(ckpt.grad, plain.grad, atol=1e-12)
