"""Meta-test: every public item carries a docstring.

The repository's documentation contract: modules, public classes,
public functions/methods, and dataclasses all explain themselves.
"""

import importlib
import inspect
import pkgutil


import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        missing = [m.__name__ for m in iter_modules()
                   if not (m.__doc__ or "").strip()]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, \
            f"undocumented public items: {sorted(missing)[:20]}"

    def test_public_methods_documented(self):
        """Public methods of public classes need docstrings too
        (dunder and inherited methods excluded)."""
        missing = []
        for module in iter_modules():
            for cls_name, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    if not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ or "").strip():
                        missing.append(
                            f"{module.__name__}.{cls_name}.{name}")
        assert not missing, \
            f"undocumented public methods: {sorted(missing)[:20]}"
