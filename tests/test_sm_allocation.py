"""Tests for the §4.2 SM-allocation model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GPU_SPECS
from repro.perf.sm_allocation import (
    SM_COMM_SATURATION_FRACTION,
    fused_kernel_time,
    optimal_sm_fraction,
)

GPU = GPU_SPECS["h800"]
FLOPS = 1e12
BYTES = 50e6


class TestFusedKernelTime:
    def test_zero_sms_cannot_communicate(self):
        alloc = fused_kernel_time(BYTES, FLOPS, GPU, 0.0)
        assert alloc.comm_time == float("inf")

    def test_zero_bytes_free_comm(self):
        alloc = fused_kernel_time(0.0, FLOPS, GPU, 0.0)
        assert alloc.comm_time == 0.0

    def test_more_sms_slower_compute(self):
        a = fused_kernel_time(BYTES, FLOPS, GPU, 0.05)
        b = fused_kernel_time(BYTES, FLOPS, GPU, 0.30)
        assert b.compute_time > a.compute_time

    def test_comm_saturates(self):
        """Beyond the saturation fraction more SMs don't speed comm."""
        sat = SM_COMM_SATURATION_FRACTION
        a = fused_kernel_time(BYTES, FLOPS, GPU, sat)
        b = fused_kernel_time(BYTES, FLOPS, GPU, 2 * sat)
        assert b.comm_time == pytest.approx(a.comm_time)

    def test_copy_engine_keeps_all_sms(self):
        alloc = fused_kernel_time(BYTES, FLOPS, GPU, 0.5,
                                  copy_engine=True)
        assert alloc.sm_fraction == 0.0
        assert alloc.compute_time == pytest.approx(
            FLOPS / (GPU.peak_flops * 0.35))

    def test_validation(self):
        with pytest.raises(ValueError, match="sm_fraction"):
            fused_kernel_time(BYTES, FLOPS, GPU, 1.0)


class TestOptimalFraction:
    def test_balances_or_saturates(self):
        alloc = optimal_sm_fraction(BYTES, FLOPS, GPU)
        if alloc.sm_fraction < SM_COMM_SATURATION_FRACTION - 1e-9:
            # Balanced point: the two sides have similar latency —
            # §4.2's tuning criterion.
            assert alloc.compute_time == pytest.approx(
                alloc.comm_time, rel=1e-6)
        else:
            assert alloc.compute_time >= alloc.comm_time

    def test_compute_heavy_balances_below_saturation(self):
        """With compute dominating, the balancing allocation shrinks
        well below the saturation point — 'a small number of SMs'."""
        alloc = optimal_sm_fraction(1e6, 1e13, GPU)
        assert alloc.sm_fraction < SM_COMM_SATURATION_FRACTION
        assert alloc.compute_time == pytest.approx(alloc.comm_time,
                                                   rel=1e-6)

    def test_comm_heavy_stays_at_saturation(self):
        """Comm-bound kernels keep exactly the saturating allocation;
        more SMs can't help the transfer."""
        alloc = optimal_sm_fraction(5e9, 1e10, GPU)
        assert alloc.sm_fraction == pytest.approx(
            SM_COMM_SATURATION_FRACTION)
        assert alloc.comm_time >= alloc.compute_time

    @given(st.floats(1e5, 1e9), st.floats(1e9, 1e14))
    @settings(max_examples=40, deadline=None)
    def test_optimal_beats_any_fixed_allocation(self, comm_bytes, flops):
        best = optimal_sm_fraction(comm_bytes, flops, GPU)
        for f in (0.02, 0.05, 0.10, 0.25, 0.5):
            candidate = fused_kernel_time(comm_bytes, flops, GPU, f)
            assert best.duration <= candidate.duration * (1 + 1e-6)

    def test_paper_claim_small_number_of_sms(self):
        """For the paper's shapes (A2A ≈ GEMM time), the optimal comm
        allocation is a small fraction of the device (§4.2: 'a small
        number of SMs')."""
        # Mixtral-8x7B-like fused QKV+A2A: ~0.1 ms of each side.
        alloc = optimal_sm_fraction(comm_bytes=24e6, flops=5.2e10, GPU=GPU) \
            if False else optimal_sm_fraction(24e6, 5.2e10, GPU)
        assert alloc.sm_fraction <= 0.15
