"""Tests for selective activation rematerialization (Appendix A.2)."""

import pytest

from repro.core.analysis import (
    activation_elements_full,
    activation_elements_remat,
)
from repro.core.config import MODEL_ZOO, ParallelConfig
from repro.core.remat import (
    PAPER_RETAINED,
    RematPlan,
    activation_table,
    default_remat_plan,
    no_remat_plan,
)


class TestActivationTable:
    def test_twenty_rows(self):
        assert len(activation_table()) == 20

    def test_fig20_names_present(self):
        names = {s.name for s in activation_table()}
        for expected in ("hidden", "qkv_a2a", "ffn_in", "fc2_out_rs",
                         "ln2_out_ag", "hidden_next"):
            assert expected in names

    def test_shares_at_reference_point(self):
        """Spot-check individual Fig. 20 shapes in bsh/n units."""
        shares = {s.name: s.share(8, 4, 3, 3.5)
                  for s in activation_table()}
        assert shares["hidden"] == 1.0
        assert shares["qkv"] == pytest.approx(1.5)       # 1 + 2/m
        assert shares["k_rope"] == pytest.approx(0.25)   # 1/m
        assert shares["ln2_out_ag"] == 8.0               # n
        assert shares["ffn_in"] == 3.0                   # k
        assert shares["fc1_out"] == pytest.approx(10.5)  # k·f

    def test_total_matches_full_formula(self):
        """Sum of all table rows == the (2n+2k+3kf+12+5/m) identity."""
        n, m, k, f = 8, 4, 3, 3.5
        total = sum(s.share(n, m, k, f) for s in activation_table())
        assert total == pytest.approx(2 * n + 2 * k + 3 * k * f
                                      + 12 + 5 / m)

    def test_recreate_classes(self):
        kinds = {s.name: s.recreate for s in activation_table()}
        assert kinds["ln1_out"] == "recompute"
        assert kinds["qkv_a2a"] == "recommunicate"
        assert kinds["fc1_out"] == "expensive"


class TestRematPlan:
    def test_paper_retained_matches_reduced_formula(self):
        """The retained set sums to (2kf + 4 + 2/m) — Appendix A.2."""
        n, m, k, f = 8, 4, 3, 3.5
        retained = sum(s.share(n, m, k, f) for s in activation_table()
                       if s.name in PAPER_RETAINED)
        assert retained == pytest.approx(2 * k * f + 4 + 2 / m)

    def test_default_plan_elements_equal_analysis(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        pc = ParallelConfig.megascale(8)
        plan = default_remat_plan()
        f = model.ffn_hidden_size / model.hidden_size
        expected = activation_elements_remat(
            2, model.seq_len, model.hidden_size, 8, model.gqa_ratio,
            model.top_k, f)
        assert plan.retained_elements(model, pc, 2) == \
            pytest.approx(expected)

    def test_no_remat_plan_elements_equal_analysis(self):
        model = MODEL_ZOO["mixtral-8x7b"]
        pc = ParallelConfig.megascale(8)
        f = model.ffn_hidden_size / model.hidden_size
        expected = activation_elements_full(
            1, model.seq_len, model.hidden_size, 8, model.gqa_ratio,
            model.top_k, f)
        assert no_remat_plan().retained_elements(model, pc, 1) == \
            pytest.approx(expected)

    def test_savings_band(self):
        """~50% activation savings (§4.1) on the evaluated models."""
        for name in ("mixtral-8x7b", "mixtral-8x2b"):
            model = MODEL_ZOO[name]
            plan = default_remat_plan()
            savings = plan.savings_vs_full(
                model, ParallelConfig.megascale(8), 1)
            assert 0.35 < savings < 0.75, (name, savings)

    def test_only_cheap_activations_recreated(self):
        """The default plan never recomputes an 'expensive' activation
        other than those reconstructable as layer inputs."""
        plan = default_remat_plan()
        expensive = [s.name for s in plan.recreated()
                     if s.recreate == "expensive"]
        # qkv, attn, attn_out, fc2_out, hidden_next are recreated only as
        # by-products of the backward pass itself, never re-run forward.
        assert set(expensive) <= {"qkv", "attn", "attn_out", "fc2_out",
                                  "hidden_next"}

    def test_recompute_and_recommunicate_lists(self):
        plan = default_remat_plan()
        assert "ln2_out" in plan.recompute_names()
        assert "fc2_in" in plan.recompute_names()
        assert "ln2_out_ag" in plan.recommunicate_names()

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError, match="unknown activations"):
            RematPlan(frozenset({"hidden", "banana"}))

    def test_custom_plan_monotonic(self):
        """Retaining strictly more activations never saves more memory."""
        model = MODEL_ZOO["mixtral-8x7b"]
        pc = ParallelConfig.megascale(8)
        small = default_remat_plan()
        bigger = RematPlan(small.retained | {"fc2_in"})
        assert bigger.retained_elements(model, pc, 1) > \
            small.retained_elements(model, pc, 1)
