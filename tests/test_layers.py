"""Tests for Module plumbing, Linear, RMSNorm, SelfAttention."""

import numpy as np
import pytest

from repro.model.layers import Linear, Module, RMSNorm, SelfAttention
from repro.tensor import Tensor


class TestModule:
    def test_named_parameters_recursive(self, rng):
        class Outer(Module):
            def __init__(self):
                self.inner = Linear(rng, 4, 4)
                self.weight = Tensor(np.zeros(3), requires_grad=True)
                self.frozen = Tensor(np.zeros(3))  # no grad -> excluded
                self.blocks = [Linear(rng, 2, 2), Linear(rng, 2, 2)]

        outer = Outer()
        names = dict(outer.named_parameters())
        assert "inner.weight" in names
        assert "weight" in names
        assert "frozen" not in names
        assert "blocks.0.weight" in names and "blocks.1.weight" in names

    def test_n_params(self, rng):
        lin = Linear(rng, 4, 6, bias=True)
        assert lin.n_params() == 4 * 6 + 6

    def test_zero_grad(self, rng):
        lin = Linear(rng, 3, 3)
        (Tensor(np.ones((2, 3))) @ lin.weight).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = Linear(rng, 4, 5, bias=True)
        b = Linear(np.random.default_rng(99), 4, 5, bias=True)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)

    def test_state_dict_missing_key(self, rng):
        a = Linear(rng, 4, 5)
        state = a.state_dict()
        del state["weight"]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch(self, rng):
        a = Linear(rng, 4, 5)
        state = {"weight": np.zeros((5, 4))}
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)


class TestLinear:
    def test_matmul(self, rng):
        lin = Linear(rng, 4, 3, dtype=np.float64)
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(lin(Tensor(x)).data,
                                   x @ lin.weight.data)

    def test_bias(self, rng):
        lin = Linear(rng, 4, 3, bias=True, dtype=np.float64)
        lin.bias.data[:] = 5.0
        out = lin(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 5.0)

    def test_init_scale(self, rng):
        lin = Linear(rng, 10000, 4)
        assert lin.weight.data.std() == pytest.approx(0.01, rel=0.1)


class TestRMSNorm:
    def test_eps_prevents_nan(self):
        norm = RMSNorm(4)
        out = norm(Tensor(np.zeros((2, 4))))
        assert np.isfinite(out.data).all()

    def test_parameters(self):
        norm = RMSNorm(8)
        assert [p.size for p in norm.parameters()] == [8]


class TestSelfAttention:
    def test_output_shape(self, rng):
        attn = SelfAttention(rng, 16, 8, 2)
        out = attn(Tensor(rng.standard_normal((2, 6, 16))
                          .astype(np.float32)))
        assert out.shape == (2, 6, 16)

    def test_head_accounting(self, rng):
        attn = SelfAttention(rng, 24, 8, 4)
        assert attn.head_dim == 3
        assert attn.n_kv_heads == 2
        assert attn.qkv_proj.weight.shape == (24, 24 + 2 * 2 * 3)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="gqa_ratio"):
            SelfAttention(rng, 16, 6, 4)
        with pytest.raises(ValueError, match="hidden_size"):
            SelfAttention(rng, 15, 4, 1)

    def test_causality_end_to_end(self, rng):
        """Perturbing the last token leaves earlier outputs unchanged."""
        attn = SelfAttention(rng, 16, 4, 2, dtype=np.float64)
        x = rng.standard_normal((1, 5, 16))
        base = attn(Tensor(x)).data
        x2 = x.copy()
        x2[0, 4] += 3.0
        pert = attn(Tensor(x2)).data
        np.testing.assert_allclose(pert[0, :4], base[0, :4], atol=1e-10)

    def test_position_sensitivity(self, rng):
        """RoPE makes attention position-dependent: permuting earlier
        tokens changes later outputs."""
        attn = SelfAttention(rng, 16, 4, 2, dtype=np.float64)
        x = rng.standard_normal((1, 4, 16))
        base = attn(Tensor(x)).data
        x2 = x[:, [1, 0, 2, 3]]
        pert = attn(Tensor(x2)).data
        assert np.abs(pert[0, 3] - base[0, 3]).max() > 1e-6

    def test_split_qkv_shapes(self, rng):
        attn = SelfAttention(rng, 16, 8, 4)
        qkv = attn.qkv_proj(Tensor(rng.standard_normal((2, 3, 16))
                                   .astype(np.float32)))
        q, k, v = attn.split_qkv(qkv, 2, 3)
        assert q.shape == (2, 3, 8, 2)
        assert k.shape == (2, 3, 2, 2)
        assert v.shape == (2, 3, 2, 2)

    def test_attend_with_positions(self, rng):
        """attend() with explicit positions equals the matching slice of
        a full-sequence pass when K/V cover the same positions."""
        attn = SelfAttention(rng, 8, 2, 1, dtype=np.float64)
        x = rng.standard_normal((1, 6, 8))
        full = attn(Tensor(x)).data
        # Reproduce manually with attend on full positions.
        qkv = attn.qkv_proj(Tensor(x))
        q, k, v = attn.split_qkv(qkv, 1, 6)
        manual = attn.attend(q, k, v, positions=np.arange(6))
        manual = attn.out_proj(manual.reshape(1, 6, 8)).data
        np.testing.assert_allclose(manual, full, atol=1e-12)
