"""Tests for routing results and precomputed dispatch mappings (§3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.routing import (
    RoutingResult,
    build_dispatch_plan,
)


def random_routing(rng, tokens, top_k, n_experts, drop_rate=0.0):
    idx = np.stack([
        rng.choice(n_experts, top_k, replace=False) for _ in range(tokens)
    ])
    w = rng.dirichlet(np.ones(top_k), tokens)
    kept = rng.random((tokens, top_k)) >= drop_rate
    return RoutingResult(idx, w, kept)


class TestRoutingResult:
    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            RoutingResult(np.zeros((3, 2), dtype=int), np.zeros((3, 3)),
                          np.ones((3, 2), dtype=bool))

    def test_tokens_per_expert(self, rng):
        r = RoutingResult(np.array([[0, 1], [1, 2]]),
                          np.full((2, 2), 0.5),
                          np.array([[True, True], [True, False]]))
        np.testing.assert_array_equal(r.tokens_per_expert(4), [1, 2, 0, 0])

    def test_properties(self, rng):
        r = random_routing(rng, 5, 2, 4)
        assert r.n_tokens == 5 and r.top_k == 2


class TestDispatchPlan:
    def test_rows_sorted_by_expert(self, rng):
        r = random_routing(rng, 20, 2, 4)
        plan = build_dispatch_plan(r, 4)
        experts_of_rows = r.expert_index[plan.token_of_row,
                                         plan.slot_of_row]
        assert (np.diff(experts_of_rows) >= 0).all()

    def test_counts_match_routing(self, rng):
        r = random_routing(rng, 30, 3, 8)
        plan = build_dispatch_plan(r, 8)
        np.testing.assert_array_equal(plan.expert_counts,
                                      r.tokens_per_expert(8))

    def test_row_of_pair_inverse(self, rng):
        r = random_routing(rng, 15, 2, 4)
        plan = build_dispatch_plan(r, 4)
        for t in range(15):
            for s in range(2):
                row = plan.row_of_pair[t, s]
                assert plan.token_of_row[row] == t
                assert plan.slot_of_row[row] == s

    def test_dropped_pairs_excluded(self, rng):
        r = random_routing(rng, 25, 2, 4, drop_rate=0.4)
        plan = build_dispatch_plan(r, 4)
        assert plan.n_rows == int(r.kept.sum())
        dropped = plan.row_of_pair[~r.kept]
        assert (dropped == -1).all()

    def test_expert_slices_cover_rows(self, rng):
        r = random_routing(rng, 40, 2, 8)
        plan = build_dispatch_plan(r, 8)
        covered = sum(end - start
                      for _, start, end in plan.expert_slices())
        assert covered == plan.n_rows

    def test_source_rank_secondary_sort(self, rng):
        """With a source-rank map, rows within one expert are ordered by
        source rank (the §4.2 tile ordering)."""
        r = random_routing(rng, 32, 2, 4)
        source = np.repeat(np.arange(4), 8)  # 4 ranks × 8 tokens
        plan = build_dispatch_plan(r, 4, source_rank_of_token=source)
        experts_of_rows = r.expert_index[plan.token_of_row,
                                         plan.slot_of_row]
        ranks_of_rows = source[plan.token_of_row]
        key = experts_of_rows * 10 + ranks_of_rows
        assert (np.diff(key) >= 0).all()

    def test_out_of_range_expert_rejected(self, rng):
        r = random_routing(rng, 5, 2, 8)
        with pytest.raises(ValueError, match="out of range"):
            build_dispatch_plan(r, 4)

    def test_deterministic(self, rng):
        r = random_routing(rng, 20, 2, 4)
        a = build_dispatch_plan(r, 4)
        b = build_dispatch_plan(r, 4)
        np.testing.assert_array_equal(a.token_of_row, b.token_of_row)

    @given(st.integers(1, 40), st.integers(1, 4), st.integers(4, 8),
           st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_plan_is_complete_permutation(self, tokens, top_k, n_experts,
                                          seed):
        """Property: every kept (token, slot) pair appears exactly once."""
        rng = np.random.default_rng(seed)
        top_k = min(top_k, n_experts)
        r = random_routing(rng, tokens, top_k, n_experts, drop_rate=0.2)
        plan = build_dispatch_plan(r, n_experts)
        pairs = set(zip(plan.token_of_row.tolist(),
                        plan.slot_of_row.tolist()))
        assert len(pairs) == plan.n_rows == int(r.kept.sum())
        assert int(plan.expert_counts.sum()) == plan.n_rows
