"""Vectorized DAG backend: all ranks batched on a leading rank axis.

The contract under test (docs/INTERNALS.md §12): running a layer — or a
whole training step — with ``execution="vectorized"`` is *bitwise
identical* to the classic sequential rank loops, including the
CommLedger byte accounting that feeds the Eq. 1-4 auditor; the
collective permutation helpers are exact data-movement mirrors of the
simulated wire protocol; and the verify/fuzz layer treats the mode as a
first-class citizen (sampled, validated, shrunk toward sequential).
"""

import numpy as np
import pytest

from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.executor_bindings import LayerProgram, layer_program
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.model.transformer import TransformerBlock
from repro.parallel import ParallelBlockEngine, shard_sequence
from repro.runtime.vectorized import _a2a_permute
from repro.verify.cases import (
    SMOKE_EXECUTIONS,
    VerifyCase,
    elastic_matrix,
    smoke_matrix,
)
from repro.verify.fuzz import _shrink_candidates, sample_case, shrink

RANKS = 4
SEQ = 8


# ---------------------------------------------------------------------------
# _a2a_permute: the balanced all-to-all as a pure axis permutation


def _reference_a2a(data, n, split_axis, concat_axis):
    """The wire-protocol semantics, spelled out with loops: destination
    ``j`` receives every source's ``j``-th split chunk, concatenated
    along the concat axis in source-rank order."""
    outs = []
    for j in range(n):
        chunks = [np.split(data[i], n, axis=split_axis)[j]
                  for i in range(n)]
        outs.append(np.concatenate(chunks, axis=concat_axis))
    return np.stack(outs, axis=0)


class TestA2APermute:
    @pytest.mark.parametrize("split_axis,concat_axis", [
        (0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1),
    ])
    def test_matches_reference_loops(self, rng, split_axis, concat_axis):
        n = 4
        data = rng.standard_normal((n, 8, 4, 12))
        out = _a2a_permute(data, n, split_axis, concat_axis)
        np.testing.assert_array_equal(
            out, _reference_a2a(data, n, split_axis, concat_axis))

    @pytest.mark.parametrize("split_axis,concat_axis", [
        (0, 1), (1, 0), (1, 2),
    ])
    def test_swapped_axes_is_inverse(self, rng, split_axis, concat_axis):
        """a2a with swapped split/concat axes undoes a2a — the router's
        dispatch/return pair is exactly this inverse relation."""
        n = 4
        data = rng.standard_normal((n, 8, 8, 8))
        there = _a2a_permute(data, n, split_axis, concat_axis)
        back = _a2a_permute(there, n, concat_axis, split_axis)
        np.testing.assert_array_equal(back, data)

    def test_zero_copy_view(self, rng):
        """The permutation never copies the payload — that is the whole
        point of simulating the collective on a stacked axis."""
        n = 4
        data = rng.standard_normal((n, 4, 8, 4))
        out = _a2a_permute(data, n, 1, 0)
        assert out.base is not None
        assert np.shares_memory(out, data)


# ---------------------------------------------------------------------------
# Config validation: vectorized execution implies the DAG backend


class TestConfigValidation:
    def test_train_config_rejects_vectorized_engine(self):
        with pytest.raises(ValueError, match="vectorized"):
            TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=SEQ, execution="vectorized",
                        backend="engine")

    def test_verify_case_rejects_vectorized_engine(self):
        # The VerifyCase default backend is "engine", so the execution
        # alone is not enough — the case must say backend="dag".
        with pytest.raises(ValueError, match="dag"):
            VerifyCase(execution="vectorized")
        with pytest.raises(ValueError, match="dag"):
            VerifyCase(execution="vectorized", backend="engine")

    def test_verify_case_id_and_twin(self):
        case = VerifyCase(execution="vectorized", backend="dag")
        assert "vec" in case.case_id.split("-")
        assert "dag" in case.case_id.split("-")
        twin = case.twin_engine()
        assert twin.execution == "sequential"
        assert twin.backend == "engine"

    def test_trainer_resolves_vectorized_to_dag(self, tiny_config):
        """With backend=None the trainer upgrades to "dag" — the mode
        only exists behind the DAG executor's op bindings."""
        model = MoETransformer(tiny_config, seed=0)
        train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                            seq_len=tiny_config.seq_len,
                            execution="vectorized")
        trainer = MegaScaleTrainer(
            model, World(RANKS, RANKS),
            ParallelConfig(RANKS, attention="sp", ffn="ep"), train)
        assert trainer.execution == "vectorized"
        assert trainer.backend == "dag"
        assert trainer.executor is None

    @pytest.mark.parametrize("matrix", [smoke_matrix, elastic_matrix])
    def test_matrices_sample_vectorized_on_dag(self, matrix):
        cases = matrix()
        vec = [c for c in cases if c.execution == "vectorized"]
        assert vec, "grid must include vectorized cases"
        assert all(c.backend == "dag" for c in vec)
        assert "vectorized" in SMOKE_EXECUTIONS


# ---------------------------------------------------------------------------
# Shuffled-topo bitwise identity: results depend on the graph, not the
# schedule the vectorized walk happens to use.


def _random_topo_order(graph, rng):
    """A random valid topological order via seeded Kahn's algorithm."""
    remaining = {op.name: set(op.deps) for op in graph}
    order = []
    while remaining:
        ready = sorted(n for n, deps in remaining.items() if not deps)
        pick = str(rng.choice(ready))
        order.append(pick)
        del remaining[pick]
        for deps in remaining.values():
            deps.discard(pick)
    return order


class TestShuffledTopoVectorized:
    @pytest.mark.parametrize("attn,ffn,dispatch", [
        ("sp", "ep", "a2a"), ("tp", "ep", "a2a"),
    ])
    def test_shuffled_order_is_bitwise_identical(self, rng, tiny_config,
                                                 attn, ffn, dispatch):
        layer_input = rng.standard_normal((2, SEQ,
                                           tiny_config.hidden_size))

        def run(program, vectorized):
            block = TransformerBlock(np.random.default_rng(0),
                                     tiny_config, dtype=np.float64)
            world = World(RANKS, RANKS)
            engine = ParallelBlockEngine(world.full_group(), block,
                                         attn, ffn, ep_mode=dispatch)
            outs, aux = engine.forward(
                shard_sequence(layer_input, RANKS), SEQ,
                dag_program=program, vectorized=vectorized)
            return [o.data for o in outs], aux.item()

        parallel = ParallelConfig(RANKS, attention=attn, ffn=ffn,
                                  ep_dispatch=dispatch)
        program = layer_program(tiny_config, parallel, 2, SEQ)
        outs_ref, aux_ref = run(program, vectorized=False)

        order = _random_topo_order(program.graph,
                                   np.random.default_rng(7))
        assert order != program.order
        shuffled = LayerProgram(graph=program.graph,
                                tasks=program.tasks, order=order,
                                durations=program.durations)
        outs, aux = run(shuffled, vectorized=True)
        assert aux == aux_ref
        for a, b in zip(outs, outs_ref):
            np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# Whole-trainer identity: losses, every parameter bit, and the ledger
# (bytes *and* record counts) agree across all three execution modes.


def _train(execution, backend, attention="sp", ffn="ep",
           ep_dispatch="a2a", dropout=0.0, precision="bf16",
           steps=2):
    cfg = ModelConfig("vec", 2, 32, 8, 2, 48, 8, 2, vocab_size=64,
                      seq_len=16)
    model = MoETransformer(cfg, seed=0, dtype=np.float64)
    train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                        seq_len=16, learning_rate=1e-2,
                        aux_loss_coeff=0.01, execution=execution,
                        backend=backend, dropout=dropout,
                        precision=precision)
    parallel = ParallelConfig(model_parallel_size=RANKS,
                              attention=attention, ffn=ffn,
                              ep_dispatch=ep_dispatch)
    world = World(RANKS, RANKS)
    trainer = MegaScaleTrainer(model, world, parallel, train)
    corpus = MarkovCorpus(vocab_size=64, seed=0)
    batches = list(batch_iterator(corpus, 4, 16, seed=1, limit=steps))
    losses = [trainer.train_step(b).loss for b in batches]
    params = {k: v.copy()
              for k, v in trainer.model.state_dict().items()}
    return losses, params, world.ledger.total_bytes(), \
        world.ledger.counts()


class TestThreeModeIdentity:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"ep_dispatch": "ag_rs"},
        {"attention": "tp", "ffn": "tp"},
        {"dropout": 0.1},
    ], ids=["sp-ep-a2a", "sp-ep-ag_rs", "tp-tp", "dropout"])
    def test_ledger_and_params_identical(self, kwargs):
        runs = {
            "sequential": _train("sequential", "engine", **kwargs),
            "threaded": _train("threaded", "engine", **kwargs),
            "vectorized": _train("vectorized", None, **kwargs),
        }
        base_losses, base_params, base_bytes, base_counts = \
            runs["sequential"]
        for mode in ("threaded", "vectorized"):
            losses, params, led_bytes, counts = runs[mode]
            assert losses == base_losses, mode
            assert params.keys() == base_params.keys()
            for name in base_params:
                np.testing.assert_array_equal(
                    params[name], base_params[name],
                    err_msg=f"{mode}:{name}")
            # Byte-exact *and* record-exact: the vectorized collectives
            # must emit the same ledger rows the wire protocol does, or
            # the Eq. 1-4 comm auditor silently drifts.
            assert led_bytes == base_bytes, mode
            assert counts == base_counts, mode


# ---------------------------------------------------------------------------
# Fuzzer: vectorized cases are sampled valid and shrink to sequential.


class TestFuzzerVectorized:
    def test_sampler_emits_valid_vectorized_cases(self):
        rng = np.random.default_rng(0)
        cases = [sample_case(rng) for _ in range(60)]
        vec = [c for c in cases if c.execution == "vectorized"]
        assert vec, "sampler must cover the vectorized mode"
        assert all(c.backend == "dag" for c in vec)

    def test_shrink_moves_vectorized_toward_sequential(self):
        case = VerifyCase(execution="vectorized", backend="dag",
                          steps=2, layers=2)
        # An always-failing predicate: the shrinker should reach the
        # global minimum, which runs on the plainest stack there is.
        minimal = shrink(case, lambda c: True)
        assert minimal.execution == "sequential"
        assert minimal.backend == "engine"
        assert minimal.ranks == 1
        assert minimal.layers == 1
        assert minimal.steps == 1

    def test_shrink_candidates_stay_valid(self):
        case = VerifyCase(execution="vectorized", backend="dag",
                          dropout=0.1, steps=2)
        candidates = list(_shrink_candidates(case))
        assert candidates, "a non-minimal case must have neighbors"
        # Construction already validated them; check the key joint
        # constraint explicitly all the same.
        for cand in candidates:
            assert not (cand.execution == "vectorized"
                        and cand.backend != "dag")
        assert any(c.execution == "sequential" for c in candidates)
